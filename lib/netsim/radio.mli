(** The shared wireless medium.

    The radio owns the half-duplex constraint of the paper's model: a
    node either transmits or listens during a phase, never both, and a
    node may not start a transmission overlapping its own previous one.
    Phases are scheduled on the engine; when a phase ends, every node
    that was {e not} transmitting receives a {!reception} describing
    everything it overheard (sources, rates, packets, receive SNRs),
    and its registered handler fires. What a receiver can decode from
    that is the PHY's and the node logic's business, not the radio's. *)

type transmission = {
  tx_src : Packet.node_id;
  tx_packet : Packet.t;
  tx_rate : float;  (** bits per channel use of this phase *)
}

type heard = {
  from : Packet.node_id;
  packet : Packet.t;
  rate : float;
  snr : float;      (** receive SNR of this source at the listener *)
}

type reception = {
  listener : Packet.node_id;
  phase_start : float;
  phase_duration : float;     (** symbols *)
  heard : heard list;         (** one entry per concurrent transmitter *)
  total_snr : float;          (** sum of the heard SNRs (MAC superposition) *)
}

type t

val create : Engine.t -> power:float -> gains:Channel.Gains.t -> t

val set_gains : t -> Channel.Gains.t -> unit
(** Update the (reciprocal) link gains — called once per fading block. *)

val set_receiver : t -> Packet.node_id -> (reception -> unit) -> unit
(** Install the handler invoked at the end of every phase the node spent
    listening. At most one handler per node (later calls replace). *)

val phase :
  t -> start:float -> duration:float -> transmissions:transmission list ->
  unit
(** Schedule one protocol phase. At [start] the radio checks the
    half-duplex and no-overlap constraints ([Failure] on violation —
    a protocol implementation bug); at [start +. duration] it delivers
    receptions to all listening nodes. Scheduling a phase overlapping a
    previously scheduled one raises [Failure] at fire time. Empty
    transmission lists are allowed (an idle gap). *)

val busy_until : t -> float
(** End time of the latest scheduled phase. *)
