(* [payload] is mutable so [pop] can drop the reference: heap slots
   beyond [len] (including the duplicated filler entries [grow] leaves
   behind) may keep the popped entry record reachable for the queue's
   lifetime, and without the clear a long-lived queue would pin every
   payload it ever delivered. *)
type 'a entry = { time : float; seq : int; mutable payload : 'a option }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let dummy = t.heap.(0) in
    let bigger = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; payload = Some payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 8 entry;
  grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    let payload =
      match top.payload with
      | Some p -> p
      | None -> assert false (* live entries always carry their payload *)
    in
    (* clear the vacated entry so the popped payload is collectable even
       while stale heap slots still reference the entry record *)
    top.payload <- None;
    Some (top.time, payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
