(** Block-level execution of the four protocols on the discrete-event
    engine, moving real bits.

    Each block occupies [block_symbols] channel uses on the virtual
    clock and is split into the protocol's phases according to the
    schedule. Within a block the simulator:

    + draws the block's channel gains from the fading process,
    + generates random message payloads for both terminals
      ([floor (rate * block_symbols)] bits each, CRC-protected),
    + plays the phases as engine events: terminals transmit, the relay
      decodes (subject to the outage PHY), XORs the two payloads and
      broadcasts, and each terminal recovers the opposite message by
      XOR-ing its own message back out,
    + verifies the recovered bits against the originals, and accounts
      throughput / outages / (never-expected) undetected bit errors.

    Decode success follows the inner-bound expressions of Theorems 2, 3
    and 5 evaluated at the block's realised gains — the quasi-static
    abstraction under which those rates are achievable. When the relay
    fails to decode, terminals fall back to direct-link-only decoding
    (TDBC/HBC side information). *)

type mode =
  | Adaptive of { backoff : float }
    (** Full CSI: each block uses the LP-optimal schedule for its
        realised gains, with rates scaled by [1 - backoff]
        ([0 <= backoff < 1]). With any positive backoff the delivery is
        outage-free by construction. *)
  | Fixed of { deltas : float array; ra : float; rb : float }
    (** A schedule fixed across blocks (e.g. computed from mean gains):
        under fading this incurs outages. *)

type config = {
  protocol : Bidir.Protocol.t;
  power : float;                  (** linear transmit power P *)
  fading : Channel.Fading.t;
  mode : mode;
  block_symbols : int;            (** channel uses per block, >= 100 *)
  blocks : int;
  seed : int;                     (** payload / corruption randomness *)
}

val validate : config -> unit
(** Raises [Invalid_argument] on malformed configurations (shared with
    the detailed simulator). *)

val schedule_for : config -> Channel.Gains.t -> float array * float * float
(** [(deltas, ra, rb)] the configuration would use for a block with the
    given realised gains (the LP optimum for adaptive mode, the fixed
    schedule otherwise). Exposed for the detailed simulator. *)

type block_outcome = {
  relay_ok : bool;   (** relay decoded both messages *)
  b_gets_a : bool;   (** terminal b decoded a's message *)
  a_gets_b : bool;
  failed_phase : int option;  (** earliest phase whose constraint broke *)
}

val decode_outcome :
  Bidir.Protocol.t -> power:float -> gains:Channel.Gains.t ->
  deltas:float array -> ra:float -> rb:float -> block_outcome
(** The per-block decode logic (exposed for the ARQ layer and tests):
    evaluates the inner-bound expressions of Theorems 2, 3 and 5 at the
    given gains for normalised rates [ra], [rb] (bits per block use). *)

type result = {
  metrics : Metrics.t;
  analytic_mean_sum_rate : float;
    (** mean over blocks of the LP-optimal instantaneous sum rate — the
        full-CSI benchmark the measured throughput should approach *)
  elapsed_symbols : float;        (** final virtual-clock reading *)
}

val run : config -> result
(** Raises [Invalid_argument] on malformed configurations (bad backoff,
    wrong schedule arity, too-small blocks). *)

val default_config :
  ?blocks:int -> ?block_symbols:int -> ?seed:int ->
  protocol:Bidir.Protocol.t -> power_db:float -> gains:Channel.Gains.t ->
  unit -> config
(** Static channel, adaptive schedule with no backoff — the setup whose
    measured throughput must equal the analytic optimal sum rate. *)
