(** Simulation counters and derived statistics. *)

type t

val create : unit -> t

val record_block :
  t -> symbols:int -> bits_a:int -> bits_b:int -> delivered_a:bool ->
  delivered_b:bool -> unit
(** Account one protocol block: [bits_a] is the size of a's message
    (bound for b), [delivered_a] whether b decoded it, and symmetrically. *)

val record_phase_outage : t -> phase:int -> unit
val record_bit_error : t -> unit
(** An undetected corruption (decoded bits differ from the sent bits
    despite all checks passing) — must stay at zero. *)

val blocks : t -> int
val symbols : t -> int
val delivered_bits : t -> int
val offered_bits : t -> int

val throughput : t -> float
(** Delivered bits (both directions) per channel use. *)

val outage_rate : t -> float
(** Fraction of message deliveries that failed. *)

val phase_outages : t -> (int * int) list
(** [(phase, count)] pairs, ascending. *)

val bit_errors : t -> int

val failed_deliveries : t -> int
(** Message deliveries that failed (the numerator of {!outage_rate}). *)

val block_bits_histogram : t -> Telemetry.Histogram.t
(** Distribution of delivered bits per block (both directions summed),
    backed by the shared telemetry histogram type. The histogram is
    owned by this [t] and not registered globally. *)

val block_bits_percentiles : t -> float * float * float
(** (p50, p90, p99) of delivered bits per block. *)

val merge : t -> t -> t
(** Combine two independent simulation runs into fresh totals; the
    inputs are left untouched. *)

val pp : Format.formatter -> t -> unit
