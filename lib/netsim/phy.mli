(** Outage physical layer.

    The standard quasi-static abstraction matching the paper's
    achievability results: a transmission at spectral efficiency [rate]
    (bits per channel use of its phase) over a block whose instantaneous
    mutual information is [i] succeeds iff [rate <= i]; otherwise the
    receiver is in outage. With full CSI and rates chosen inside the
    instantaneous region, outage never occurs; with schedules fixed in
    advance under fading, it does. *)

val p2p_success : power:float -> gain:float -> rate:float -> bool
(** Single-user link: success iff [rate <= C(power * gain)]. A zero-rate
    transmission always succeeds. *)

val broadcast_success :
  power:float -> gains:float list -> rates:float list -> bool list
(** Per-receiver outcomes of a common broadcast; [gains] and [rates] are
    per-receiver (each receiver needs a possibly different message rate,
    as with the XOR broadcast where each side knows its own message). *)

val mac_success :
  power:float -> gain1:float -> gain2:float -> rate1:float -> rate2:float ->
  bool
(** Two-user Gaussian MAC at the relay: the rate pair must lie in the
    pentagon [r1 <= C(P g1), r2 <= C(P g2), r1+r2 <= C(P g1 + P g2)]. *)

val combined_success : parts:(float * float) list -> rate:float -> bool
(** Information accumulated across several phases (e.g. TDBC side
    information plus the relay broadcast): [parts] is a list of
    [(fraction_of_block, mutual_information)] and the message of
    normalised [rate] (bits per block use) is decodable iff
    [rate <= sum fraction * mi]. *)
