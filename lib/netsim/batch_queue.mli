(** Constant-time FIFO of (arrival, bits) traffic batches.

    A two-list (Okasaki) queue: [enqueue] conses onto the back list in
    O(1), and [drain] serves from the front list, reversing the back
    list into the front only when the front runs dry — so every batch is
    moved at most once and a full enqueue/serve cycle is amortised O(1)
    per batch. The previous list-append implementation was O(n) per
    enqueue, i.e. O(n^2) exactly in the overload regime the delay
    curves probe. *)

type t

val create : unit -> t

val is_empty : t -> bool

val bits : t -> int
(** Total queued bits (partial service of the head batch included). *)

val length : t -> int
(** Number of queued batches. *)

val enqueue : t -> arrival:float -> bits:int -> unit
(** Append a batch stamped with its arrival time. Batches with
    [bits <= 0] are ignored. O(1). *)

val drain : t -> budget:int -> now:float -> float list
(** Serve up to [budget] bits in FIFO order and return the sojourn
    times [now - arrival] of the batches that completed, most recently
    completed first (the order the previous implementation produced).
    A batch larger than the remaining budget is served partially: its
    head shrinks and it completes in a later call. Amortised O(1) per
    completed batch. *)
