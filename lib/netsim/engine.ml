type t = { queue : (unit -> unit) Event_queue.t; mutable clock : float }

let create () = { queue = Event_queue.create (); clock = 0. }

let now t = t.clock

let schedule_at t ~time handler =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time handler

let schedule_after t ~delay handler =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) handler

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handler) ->
    t.clock <- time;
    handler ();
    true

let run ?until t =
  let continue () =
    match (until, Event_queue.peek_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue () do
    ignore (step t)
  done

let pending t = Event_queue.size t.queue
