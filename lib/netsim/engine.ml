type t = { queue : (unit -> unit) Event_queue.t; mutable clock : float }

(* Event-loop telemetry: how many events fired and how deep the queue
   sits when they do. Virtual time is untouched, so instrumentation can
   never perturb simulation results. *)
let events_counter = Telemetry.Metrics.counter "netsim.events"

let queue_depth =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:32
    "netsim.queue_depth"

let create () = { queue = Event_queue.create (); clock = 0. }

let now t = t.clock

let schedule_at t ~time handler =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time handler

let schedule_after t ~delay handler =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) handler

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handler) ->
    Telemetry.Metrics.incr events_counter;
    Telemetry.Metrics.observe queue_depth
      (float_of_int (Event_queue.size t.queue));
    t.clock <- time;
    handler ();
    true

let run ?until t =
  Telemetry.Span.with_span ~cat:"netsim" "netsim.run"
  @@ fun () ->
  let continue () =
    match (until, Event_queue.peek_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue () do
    ignore (step t)
  done

let pending t = Event_queue.size t.queue
