(** Per-node decode state for the detailed simulator.

    Each node accumulates, across the phases of one protocol block,
    normalised mutual-information budgets toward decoding each source's
    message (information-accumulation view of decode-and-forward: a
    message of rate R bits per block use is decodable once its
    accumulated budget reaches R). The relay additionally tracks the
    joint (MAC sum) budget limiting the two terminal messages together.

    Broadcast and addressed traffic are tracked separately: the coded
    protocols broadcast ([Packet.dst = None]) and decoders may combine
    budget across phases, while the naive routing protocol addresses
    each forwarded packet to a single terminal ([dst = Some n]) and only
    that terminal accounts it. Frames addressed to a different node are
    dropped on arrival. *)

type t

val create : Packet.node_id -> block_symbols:int -> t

val id : t -> Packet.node_id

val reset : t -> unit
(** Start a new block: clear budgets and received packets. *)

val observe : t -> Radio.reception -> unit
(** Account one listened phase: for every heard source [s] (whose frame
    is broadcast or addressed to this node), the budget toward [s] grows
    by [(duration / block) * C(snr_s)]; when at least one terminal was
    heard, the joint budget grows by [(duration / block) * C(total_snr)].
    The first broadcast packet and the first addressed packet per source
    are retained. *)

val budget : t -> Packet.node_id -> float
(** Accumulated bits-per-block-use toward that source's broadcast
    traffic. *)

val budget_addressed : t -> Packet.node_id -> float
(** Budget from frames the source addressed to this node. *)

val joint_budget : t -> float

val packet_from : t -> Packet.node_id -> Packet.t option
(** The broadcast packet overheard from that source, if any. *)

val packet_addressed_from : t -> Packet.node_id -> Packet.t option

val can_decode : t -> src:Packet.node_id -> rate:float -> bool
(** Broadcast-budget test: [budget >= rate] (with tolerance). *)

val relay_can_decode_both : t -> ra:float -> rb:float -> bool
(** Both individual (broadcast) budgets and the joint budget suffice. *)
