(** Stop-and-wait block ARQ on top of the protocol runner.

    A fixed-rate schedule under fading loses blocks; ARQ recovers them by
    retransmitting a failed message pair in subsequent blocks (fresh
    fading draw each time), up to a retry budget. This trades delay and
    goodput for reliability — the classic quasi-static workaround when
    the transmitter has no CSI. Each attempt consumes one full protocol
    block on the virtual clock. *)

type config = {
  protocol : Bidir.Protocol.t;
  power : float;                   (** linear transmit power *)
  fading : Channel.Fading.t;
  deltas : float array;            (** fixed phase schedule *)
  ra : float;                      (** fixed rate of a's messages *)
  rb : float;
  block_symbols : int;
  messages : int;                  (** message pairs to deliver *)
  max_retries : int;               (** additional attempts per message pair *)
  seed : int;
}

type result = {
  delivered_pairs : int;       (** pairs with both directions decoded *)
  dropped_pairs : int;         (** retry budget exhausted *)
  total_blocks : int;          (** blocks consumed, retries included *)
  goodput : float;             (** delivered bits (both dirs) per symbol *)
  mean_attempts : float;       (** attempts per delivered pair *)
  max_attempts_seen : int;
}

val run : config -> result
(** Raises [Invalid_argument] on malformed configurations. *)
