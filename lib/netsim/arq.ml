type config = {
  protocol : Bidir.Protocol.t;
  power : float;
  fading : Channel.Fading.t;
  deltas : float array;
  ra : float;
  rb : float;
  block_symbols : int;
  messages : int;
  max_retries : int;
  seed : int;
}

type result = {
  delivered_pairs : int;
  dropped_pairs : int;
  total_blocks : int;
  goodput : float;
  mean_attempts : float;
  max_attempts_seen : int;
}

let validate cfg =
  if Array.length cfg.deltas <> Bidir.Protocol.num_phases cfg.protocol then
    invalid_arg "Arq: schedule arity does not match the protocol";
  if cfg.ra < 0. || cfg.rb < 0. then invalid_arg "Arq: negative rates";
  if cfg.block_symbols < 100 then invalid_arg "Arq: block_symbols too small";
  if cfg.messages <= 0 then invalid_arg "Arq: messages must be positive";
  if cfg.max_retries < 0 then invalid_arg "Arq: negative retry budget";
  if cfg.power < 0. then invalid_arg "Arq: negative power";
  let total = Numerics.Float_utils.sum cfg.deltas in
  if not (Numerics.Float_utils.approx_equal ~eps:1e-6 total 1.) then
    invalid_arg "Arq: durations must sum to 1"

(* Note the simplification relative to a production HARQ: failed
   attempts are discarded entirely (no soft combining across attempts),
   and the feedback channel is ideal and free. *)
let run cfg =
  validate cfg;
  let rng = Prob.Rng.create ~seed:cfg.seed in
  let n = cfg.block_symbols in
  let bits_a = int_of_float (cfg.ra *. float_of_int n) in
  let bits_b = int_of_float (cfg.rb *. float_of_int n) in
  let ra_eff = float_of_int bits_a /. float_of_int n in
  let rb_eff = float_of_int bits_b /. float_of_int n in
  let delivered = ref 0 and dropped = ref 0 and blocks = ref 0 in
  let attempts_of_delivered = ref 0 and max_attempts = ref 0 in
  for seq = 0 to cfg.messages - 1 do
    (* one message pair; retry whole-block until both directions land *)
    let rec attempt k =
      incr blocks;
      let gains = Channel.Fading.draw cfg.fading in
      let outcome =
        Runner.decode_outcome cfg.protocol ~power:cfg.power ~gains
          ~deltas:cfg.deltas ~ra:ra_eff ~rb:rb_eff
      in
      (* exercise the bit pipeline so CRC/XOR correctness stays covered *)
      let wa = Coding.Bitvec.random rng (max 1 bits_a) in
      let wb = Coding.Bitvec.random rng (max 1 bits_b) in
      let pair_ok =
        outcome.Runner.b_gets_a && outcome.Runner.a_gets_b
        &&
        let pa = Packet.fresh ~src:Packet.A ~seq wa in
        let pb = Packet.fresh ~src:Packet.B ~seq wb in
        match Packet.verify (Packet.xor_payloads pa pb ~src:Packet.R ~seq) with
        | None -> false
        | Some wr ->
          Coding.Bitvec.equal
            (Coding.Xor_relay.recover_exact ~own:wb ~relay:wr
               ~expected_len:(Coding.Bitvec.length wa))
            wa
      in
      if pair_ok then begin
        incr delivered;
        attempts_of_delivered := !attempts_of_delivered + k;
        if k > !max_attempts then max_attempts := k
      end
      else if k <= cfg.max_retries then attempt (k + 1)
      else begin
        incr dropped;
        if k > !max_attempts then max_attempts := k
      end
    in
    attempt 1
  done;
  let goodput =
    float_of_int (!delivered * (bits_a + bits_b))
    /. float_of_int (!blocks * n)
  in
  { delivered_pairs = !delivered;
    dropped_pairs = !dropped;
    total_blocks = !blocks;
    goodput;
    mean_attempts =
      (if !delivered = 0 then 0.
       else float_of_int !attempts_of_delivered /. float_of_int !delivered);
    max_attempts_seen = !max_attempts;
  }
