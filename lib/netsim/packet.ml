type node_id = A | B | R

let node_name = function A -> "a" | B -> "b" | R -> "r"

type t = {
  src : node_id;
  dst : node_id option;
  seq : int;
  payload : Coding.Bitvec.t;
  checksum_ok : bool;
}

let fresh ~src ?dst ~seq payload =
  { src; dst; seq; payload = Coding.Crc.append_crc16 payload; checksum_ok = true }

let payload_bits t = max 0 (Coding.Bitvec.length t.payload - 16)

let corrupt rng t =
  let corrupted = Coding.Bitvec.copy t.payload in
  let len = Coding.Bitvec.length corrupted in
  if len > 0 then begin
    let flips = 1 + Prob.Rng.int rng (max 1 (len / 8)) in
    for _ = 1 to flips do
      let i = Prob.Rng.int rng len in
      Coding.Bitvec.set corrupted i (not (Coding.Bitvec.get corrupted i))
    done
  end;
  { t with payload = corrupted; checksum_ok = false }

let verify t = Coding.Crc.check_crc16 t.payload

let xor_payloads p1 p2 ~src ~seq =
  (* combine the raw payloads (CRC stripped) and re-protect *)
  match (verify p1, verify p2) with
  | Some w1, Some w2 ->
    fresh ~src ~seq (Coding.Xor_relay.combine w1 w2)
  | _ -> invalid_arg "Packet.xor_payloads: cannot combine corrupted packets"

let readdress p ~src ~dst =
  match verify p with
  | Some payload -> fresh ~src ~dst ~seq:p.seq payload
  | None -> invalid_arg "Packet.readdress: corrupted packet"
