type t = {
  mutable front : (float * int) list;  (* oldest first *)
  mutable back : (float * int) list;   (* newest first *)
  mutable bits : int;
  mutable length : int;
}

let create () = { front = []; back = []; bits = 0; length = 0 }

let is_empty q = q.length = 0

let bits q = q.bits

let length q = q.length

let enqueue q ~arrival ~bits =
  if bits > 0 then begin
    q.back <- (arrival, bits) :: q.back;
    q.bits <- q.bits + bits;
    q.length <- q.length + 1
  end

let drain q ~budget ~now =
  let rec go budget acc =
    match q.front with
    | [] ->
      if q.back = [] then acc
      else begin
        q.front <- List.rev q.back;
        q.back <- [];
        go budget acc
      end
    | (arrival, bits) :: rest ->
      if bits <= budget then begin
        q.front <- rest;
        q.bits <- q.bits - bits;
        q.length <- q.length - 1;
        go (budget - bits) ((now -. arrival) :: acc)
      end
      else begin
        (* partial service: the batch head shrinks, no completion yet *)
        if budget > 0 then begin
          q.front <- (arrival, bits - budget) :: rest;
          q.bits <- q.bits - budget
        end;
        acc
      end
  in
  go budget []
