(** A binary min-heap of timestamped events.

    Ties in time are broken by insertion order, so the simulation is
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on NaN times. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. The queue drops its
    reference to the payload, so popped payloads are collectable even
    while the queue itself stays live. *)

val peek_time : 'a t -> float option
