let log_src = Logs.Src.create "netsim" ~doc:"bidirectional relay simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode =
  | Adaptive of { backoff : float }
  | Fixed of { deltas : float array; ra : float; rb : float }

type config = {
  protocol : Bidir.Protocol.t;
  power : float;
  fading : Channel.Fading.t;
  mode : mode;
  block_symbols : int;
  blocks : int;
  seed : int;
}

type result = {
  metrics : Metrics.t;
  analytic_mean_sum_rate : float;
  elapsed_symbols : float;
}

type schedule = { deltas : float array; ra : float; rb : float }

(* Decode outcomes of one block. [failed_phase] points at the earliest
   phase whose constraint broke (for outage attribution). *)
type block_outcome = {
  relay_ok : bool;
  b_gets_a : bool;
  a_gets_b : bool;
  failed_phase : int option;
}

let validate cfg =
  (match cfg.mode with
  | Adaptive { backoff } ->
    if backoff < 0. || backoff >= 1. then
      invalid_arg "Runner: backoff must be in [0, 1)"
  | Fixed { deltas; ra; rb } ->
    if Array.length deltas <> Bidir.Protocol.num_phases cfg.protocol then
      invalid_arg "Runner: schedule arity does not match the protocol";
    if ra < 0. || rb < 0. then invalid_arg "Runner: negative fixed rates";
    let total = Numerics.Float_utils.sum deltas in
    if not (Numerics.Float_utils.approx_equal ~eps:1e-6 total 1.) then
      invalid_arg "Runner: fixed durations must sum to 1");
  if cfg.block_symbols < 100 then
    invalid_arg "Runner: block_symbols must be at least 100";
  if cfg.blocks <= 0 then invalid_arg "Runner: blocks must be positive";
  if cfg.power < 0. then invalid_arg "Runner: negative power"

let instantaneous_schedule cfg gains =
  match cfg.mode with
  | Fixed { deltas; ra; rb } -> { deltas; ra; rb }
  | Adaptive { backoff } ->
    let s = Bidir.Gaussian.scenario_lin ~power:cfg.power ~gains in
    let r = Bidir.Optimize.sum_rate cfg.protocol Bidir.Bound.Inner s in
    { deltas = r.Bidir.Optimize.deltas;
      ra = r.Bidir.Optimize.ra *. (1. -. backoff);
      rb = r.Bidir.Optimize.rb *. (1. -. backoff);
    }

let schedule_for cfg gains =
  let s = instantaneous_schedule cfg gains in
  (s.deltas, s.ra, s.rb)

(* Success logic per protocol: the inner-bound expressions of Theorems
   2, 3 and 5 at the realised gains. [ra]/[rb] are bits per block use.
   See test_netsim for the consistency check against Bound.satisfied. *)
let decode_outcome protocol ~power ~(gains : Channel.Gains.t) ~deltas ~ra ~rb =
  let c g = Channel.Awgn.c (power *. g) in
  let g_ab = gains.Channel.Gains.g_ab
  and g_ar = gains.Channel.Gains.g_ar
  and g_br = gains.Channel.Gains.g_br in
  let d l = deltas.(l) in
  match protocol with
  | Bidir.Protocol.Dt ->
    let b_gets_a = ra <= (d 0 *. c g_ab) +. 1e-9 in
    let a_gets_b = rb <= (d 1 *. c g_ab) +. 1e-9 in
    { relay_ok = true;
      b_gets_a;
      a_gets_b;
      failed_phase = (if not b_gets_a then Some 1 else if not a_gets_b then Some 2 else None);
    }
  | Bidir.Protocol.Naive ->
    (* four-hop routing: a->r, r->b, b->r, r->a, no coding. The bits
       travel per-hop (relay re-encodes), so [relay_ok] is reported
       false to route [move_bits] through the direct-packet comparison;
       [b_gets_a]/[a_gets_b] already encode the 2-hop success. *)
    let relay_a = ra <= (d 0 *. c g_ar) +. 1e-9 in
    let hop_rb = ra <= (d 1 *. c g_br) +. 1e-9 in
    let relay_b = rb <= (d 2 *. c g_br) +. 1e-9 in
    let hop_ra = rb <= (d 3 *. c g_ar) +. 1e-9 in
    { relay_ok = false;
      b_gets_a = relay_a && hop_rb;
      a_gets_b = relay_b && hop_ra;
      failed_phase =
        (if not relay_a then Some 1
         else if not hop_rb then Some 2
         else if not relay_b then Some 3
         else if not hop_ra then Some 4
         else None);
    }
  | Bidir.Protocol.Mabc ->
    let relay_ok =
      Phy.mac_success ~power ~gain1:g_ar ~gain2:g_br ~rate1:(ra /. Float.max (d 0) 1e-12)
        ~rate2:(rb /. Float.max (d 0) 1e-12)
      && d 0 > 0.
    in
    let bcast_b = ra <= (d 1 *. c g_br) +. 1e-9 in
    let bcast_a = rb <= (d 1 *. c g_ar) +. 1e-9 in
    { relay_ok;
      b_gets_a = relay_ok && bcast_b;
      a_gets_b = relay_ok && bcast_a;
      failed_phase =
        (if not relay_ok then Some 1
         else if not (bcast_a && bcast_b) then Some 2
         else None);
    }
  | Bidir.Protocol.Tdbc ->
    let relay_a = ra <= (d 0 *. c g_ar) +. 1e-9 in
    let relay_b = rb <= (d 1 *. c g_br) +. 1e-9 in
    let relay_ok = relay_a && relay_b in
    let b_gets_a =
      if relay_ok then
        Phy.combined_success
          ~parts:[ (d 0, c g_ab); (d 2, c g_br) ]
          ~rate:ra
      else ra <= (d 0 *. c g_ab) +. 1e-9
    in
    let a_gets_b =
      if relay_ok then
        Phy.combined_success
          ~parts:[ (d 1, c g_ab); (d 2, c g_ar) ]
          ~rate:rb
      else rb <= (d 1 *. c g_ab) +. 1e-9
    in
    { relay_ok;
      b_gets_a;
      a_gets_b;
      failed_phase =
        (if not relay_a then Some 1
         else if not relay_b then Some 2
         else if not (b_gets_a && a_gets_b) then Some 3
         else None);
    }
  | Bidir.Protocol.Hbc ->
    let relay_ok =
      ra <= ((d 0 +. d 2) *. c g_ar) +. 1e-9
      && rb <= ((d 1 +. d 2) *. c g_br) +. 1e-9
      && ra +. rb
         <= (d 0 *. c g_ar) +. (d 1 *. c g_br) +. (d 2 *. c (g_ar +. g_br))
            +. 1e-9
    in
    let b_gets_a =
      if relay_ok then
        Phy.combined_success ~parts:[ (d 0, c g_ab); (d 3, c g_br) ] ~rate:ra
      else ra <= (d 0 *. c g_ab) +. 1e-9
    in
    let a_gets_b =
      if relay_ok then
        Phy.combined_success ~parts:[ (d 1, c g_ab); (d 3, c g_ar) ] ~rate:rb
      else rb <= (d 1 *. c g_ab) +. 1e-9
    in
    { relay_ok;
      b_gets_a;
      a_gets_b;
      failed_phase =
        (if not relay_ok then Some 3
         else if not (b_gets_a && a_gets_b) then Some 4
         else None);
    }

(* One block's bit-level pipeline given its decode outcome. Returns the
   (delivered_a, delivered_b, bit_error_count) triple after CRC checks
   and payload comparison. *)
let move_bits rng ~outcome ~bits_a ~bits_b ~seq =
  let wa = Coding.Bitvec.random rng bits_a in
  let wb = Coding.Bitvec.random rng bits_b in
  let pkt_a = Packet.fresh ~src:Packet.A ~seq wa in
  let pkt_b = Packet.fresh ~src:Packet.B ~seq wb in
  let bit_errors = ref 0 in
  let delivered_via_relay ~own ~expected ~expected_len =
    (* the relay combined both clean packets; the terminal xors its own
       message back out *)
    match Packet.verify (Packet.xor_payloads pkt_a pkt_b ~src:Packet.R ~seq) with
    | None -> false
    | Some relay_word ->
      let recovered =
        Coding.Xor_relay.recover_exact ~own ~relay:relay_word ~expected_len
      in
      let ok = Coding.Bitvec.equal recovered expected in
      if not ok then incr bit_errors;
      ok
  in
  let delivered_direct pkt expected =
    match Packet.verify pkt with
    | None -> false
    | Some w ->
      let ok = Coding.Bitvec.equal w expected in
      if not ok then incr bit_errors;
      ok
  in
  let delivered_a =
    if not outcome.b_gets_a then begin
      (* outage: b sees garbage; the CRC must catch it *)
      (match Packet.verify (Packet.corrupt rng pkt_a) with
      | Some w when Coding.Bitvec.equal w wa -> ()
      | Some _ -> incr bit_errors (* undetected corruption *)
      | None -> ());
      false
    end
    else if outcome.relay_ok then
      delivered_via_relay ~own:wb ~expected:wa ~expected_len:bits_a
    else delivered_direct pkt_a wa
  in
  let delivered_b =
    if not outcome.a_gets_b then false
    else if outcome.relay_ok then
      delivered_via_relay ~own:wa ~expected:wb ~expected_len:bits_b
    else delivered_direct pkt_b wb
  in
  (delivered_a, delivered_b, !bit_errors)

let run cfg =
  validate cfg;
  let metrics = Metrics.create () in
  let engine = Engine.create () in
  let rng = Prob.Rng.create ~seed:cfg.seed in
  let n = cfg.block_symbols in
  let analytic_acc = ref 0. in
  let run_block index =
    let gains = Channel.Fading.draw cfg.fading in
    let sched = instantaneous_schedule cfg gains in
    (let s = Bidir.Gaussian.scenario_lin ~power:cfg.power ~gains in
     let opt = Bidir.Optimize.sum_rate cfg.protocol Bidir.Bound.Inner s in
     analytic_acc := !analytic_acc +. opt.Bidir.Optimize.sum_rate);
    let bits_a = int_of_float (sched.ra *. float_of_int n) in
    let bits_b = int_of_float (sched.rb *. float_of_int n) in
    (* effective (floored) rates actually carried by the payloads *)
    let ra_eff = float_of_int bits_a /. float_of_int n in
    let rb_eff = float_of_int bits_b /. float_of_int n in
    let outcome =
      decode_outcome cfg.protocol ~power:cfg.power ~gains ~deltas:sched.deltas
        ~ra:ra_eff ~rb:rb_eff
    in
    (match outcome.failed_phase with
    | Some phase -> Metrics.record_phase_outage metrics ~phase
    | None -> ());
    let delivered_a, delivered_b, errs =
      move_bits rng ~outcome ~bits_a ~bits_b ~seq:index
    in
    for _ = 1 to errs do
      Metrics.record_bit_error metrics
    done;
    Metrics.record_block metrics ~symbols:n ~bits_a ~bits_b ~delivered_a
      ~delivered_b;
    Log.debug (fun m ->
        m "block %d: ra=%.3f rb=%.3f delivered=(%b,%b)" index ra_eff rb_eff
          delivered_a delivered_b)
  in
  (* schedule every block on the virtual clock, one per [n] symbols *)
  for i = 0 to cfg.blocks - 1 do
    Engine.schedule_at engine
      ~time:(float_of_int (i * n))
      (fun () -> run_block i)
  done;
  Engine.run engine;
  { metrics;
    analytic_mean_sum_rate = !analytic_acc /. float_of_int cfg.blocks;
    elapsed_symbols = Engine.now engine +. float_of_int n;
  }

let default_config ?(blocks = 200) ?(block_symbols = 10_000) ?(seed = 42)
    ~protocol ~power_db ~gains () =
  { protocol;
    power = Numerics.Float_utils.db_to_lin power_db;
    fading = Channel.Fading.static gains;
    mode = Adaptive { backoff = 0. };
    block_symbols;
    blocks;
    seed;
  }
