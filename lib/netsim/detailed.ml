let tx src packet rate =
  { Radio.tx_src = src; tx_packet = packet; tx_rate = rate }

let run (cfg : Runner.config) =
  Runner.validate cfg;
  let metrics = Metrics.create () in
  let engine = Engine.create () in
  let rng = Prob.Rng.create ~seed:cfg.seed in
  let n = cfg.block_symbols in
  let nf = float_of_int n in
  let radio =
    Radio.create engine ~power:cfg.power ~gains:(Channel.Fading.mean cfg.fading)
  in
  let node_a = Node.create Packet.A ~block_symbols:n in
  let node_b = Node.create Packet.B ~block_symbols:n in
  let node_r = Node.create Packet.R ~block_symbols:n in
  Radio.set_receiver radio Packet.A (Node.observe node_a);
  Radio.set_receiver radio Packet.B (Node.observe node_b);
  Radio.set_receiver radio Packet.R (Node.observe node_r);
  let analytic_acc = ref 0. in
  (* blocks are chained (each finalize schedules the next) rather than
     all scheduled upfront: at a shared timestamp the FIFO tie-break
     would otherwise start block i+1 — and reset the nodes — before
     block i's finalize reads their budgets *)
  let rec run_block index =
    let t0 = float_of_int (index * n) in
    let gains = Channel.Fading.draw cfg.fading in
    Radio.set_gains radio gains;
    (let s = Bidir.Gaussian.scenario_lin ~power:cfg.power ~gains in
     let opt = Bidir.Optimize.sum_rate cfg.protocol Bidir.Bound.Inner s in
     analytic_acc := !analytic_acc +. opt.Bidir.Optimize.sum_rate);
    let deltas, ra, rb = Runner.schedule_for cfg gains in
    let bits_a = int_of_float (ra *. nf) in
    let bits_b = int_of_float (rb *. nf) in
    let ra_eff = float_of_int bits_a /. nf in
    let rb_eff = float_of_int bits_b /. nf in
    Node.reset node_a;
    Node.reset node_b;
    Node.reset node_r;
    let wa = Coding.Bitvec.random rng bits_a in
    let wb = Coding.Bitvec.random rng bits_b in
    let pkt_a = Packet.fresh ~src:Packet.A ~seq:index wa in
    let pkt_b = Packet.fresh ~src:Packet.B ~seq:index wb in
    (* phase boundaries, with the final edge pinned to exactly t0 + nf so
       accumulated rounding can never spill a phase into the next block *)
    let num_phases = Array.length deltas in
    let total = Numerics.Float_utils.sum deltas in
    let boundaries =
      Array.init (num_phases + 1) (fun l ->
          if l = num_phases then t0 +. nf
          else begin
            let cum = ref 0. in
            for k = 0 to l - 1 do
              cum := !cum +. deltas.(k)
            done;
            t0 +. (nf *. !cum /. total)
          end)
    in
    let start l = boundaries.(l) in
    let dur l = boundaries.(l + 1) -. boundaries.(l) in
    let phase_rate bits l =
      if dur l <= 0. then 0. else float_of_int bits /. dur l
    in
    let relay_bcast_ok = ref false in
    (* the relay's broadcast decision, made live at its phase start *)
    let schedule_relay_phase ~phase_index ~after =
      Engine.schedule_at engine ~time:(start phase_index) (fun () ->
          let ok =
            Node.relay_can_decode_both node_r ~ra:ra_eff ~rb:rb_eff
            && Node.packet_from node_r Packet.A <> None
            && Node.packet_from node_r Packet.B <> None
          in
          relay_bcast_ok := ok;
          let transmissions =
            if ok then begin
              match
                ( Node.packet_from node_r Packet.A,
                  Node.packet_from node_r Packet.B )
              with
              | Some pa, Some pb ->
                [ tx Packet.R
                    (Packet.xor_payloads pa pb ~src:Packet.R ~seq:index)
                    0.
                ]
              | _ -> assert false (* guarded by [ok] above *)
            end
            else [] (* decode failure: the relay stays silent *)
          in
          Radio.phase radio ~start:(start phase_index)
            ~duration:(dur phase_index) ~transmissions;
          after ())
    in
    let finalize () =
      (* terminal decode: direct side information, plus the broadcast
         budget when the relay sent a valid XOR *)
      let decode ~at ~own_word ~src ~expected ~bits ~rate =
        let direct = Node.budget at src in
        let success =
          if !relay_bcast_ok then
            rate <= direct +. Node.budget at Packet.R +. 1e-9
          else rate <= direct +. 1e-9
        in
        if not success then false
        else if !relay_bcast_ok then begin
          match Node.packet_from at Packet.R with
          | None -> false
          | Some pr -> begin
            match Packet.verify pr with
            | None -> false
            | Some wr ->
              let recovered =
                Coding.Xor_relay.recover_exact ~own:own_word ~relay:wr
                  ~expected_len:bits
              in
              let ok = Coding.Bitvec.equal recovered expected in
              if not ok then Metrics.record_bit_error metrics;
              ok
          end
        end
        else begin
          match Node.packet_from at src with
          | None -> bits = 0 (* nothing was sent and nothing was needed *)
          | Some p -> begin
            match Packet.verify p with
            | None -> false
            | Some w ->
              let ok = Coding.Bitvec.equal w expected in
              if not ok then Metrics.record_bit_error metrics;
              ok
          end
        end
      in
      let delivered_a =
        decode ~at:node_b ~own_word:wb ~src:Packet.A ~expected:wa ~bits:bits_a
          ~rate:ra_eff
      in
      let delivered_b =
        decode ~at:node_a ~own_word:wa ~src:Packet.B ~expected:wb ~bits:bits_b
          ~rate:rb_eff
      in
      if not (delivered_a && delivered_b) then begin
        let relay_phase, bcast_phase =
          match cfg.Runner.protocol with
          | Bidir.Protocol.Dt -> (1, 2)
          | Bidir.Protocol.Naive -> (1, 2) (* has its own finalize *)
          | Bidir.Protocol.Mabc -> (1, 2)
          | Bidir.Protocol.Tdbc -> (1, 3)
          | Bidir.Protocol.Hbc -> (3, 4)
        in
        Metrics.record_phase_outage metrics
          ~phase:(if !relay_bcast_ok then bcast_phase else relay_phase)
      end;
      Metrics.record_block metrics ~symbols:n ~bits_a ~bits_b ~delivered_a
        ~delivered_b;
      if index + 1 < cfg.Runner.blocks then
        Engine.schedule_at engine
          ~time:(float_of_int ((index + 1) * n))
          (fun () -> run_block (index + 1))
    in
    let schedule_finalize () =
      Engine.schedule_at engine ~time:(t0 +. nf) finalize
    in
    (* --- naive routing: addressed store-and-forward, no coding --- *)
    let naive_fwd_a = ref false and naive_fwd_b = ref false in
    let naive_forward ~phase_index ~src ~dst ~rate ~forwarded ~after =
      Engine.schedule_at engine ~time:(start phase_index) (fun () ->
          let ok =
            rate <= Node.budget_addressed node_r src +. 1e-9
            && Node.packet_addressed_from node_r src <> None
          in
          forwarded := ok;
          let transmissions =
            if ok then begin
              match Node.packet_addressed_from node_r src with
              | Some p -> [ tx Packet.R (Packet.readdress p ~src:Packet.R ~dst) 0. ]
              | None -> assert false (* guarded by [ok] *)
            end
            else []
          in
          Radio.phase radio ~start:(start phase_index)
            ~duration:(dur phase_index) ~transmissions;
          after ())
    in
    let naive_finalize () =
      let decode ~at ~forwarded ~expected ~rate =
        forwarded
        && rate <= Node.budget_addressed at Packet.R +. 1e-9
        &&
        match Node.packet_addressed_from at Packet.R with
        | None -> false
        | Some p -> begin
          match Packet.verify p with
          | None -> false
          | Some w ->
            let ok = Coding.Bitvec.equal w expected in
            if not ok then Metrics.record_bit_error metrics;
            ok
        end
      in
      let delivered_a =
        decode ~at:node_b ~forwarded:!naive_fwd_a ~expected:wa ~rate:ra_eff
      in
      let delivered_b =
        decode ~at:node_a ~forwarded:!naive_fwd_b ~expected:wb ~rate:rb_eff
      in
      if not (delivered_a && delivered_b) then
        Metrics.record_phase_outage metrics
          ~phase:
            (if not !naive_fwd_a then 1
             else if not delivered_a then 2
             else if not !naive_fwd_b then 3
             else 4);
      Metrics.record_block metrics ~symbols:n ~bits_a ~bits_b ~delivered_a
        ~delivered_b;
      if index + 1 < cfg.Runner.blocks then
        Engine.schedule_at engine
          ~time:(float_of_int ((index + 1) * n))
          (fun () -> run_block (index + 1))
    in
    match cfg.Runner.protocol with
    | Bidir.Protocol.Dt ->
      Radio.phase radio ~start:(start 0) ~duration:(dur 0)
        ~transmissions:[ tx Packet.A pkt_a (phase_rate bits_a 0) ];
      Radio.phase radio ~start:(start 1) ~duration:(dur 1)
        ~transmissions:[ tx Packet.B pkt_b (phase_rate bits_b 1) ];
      (* no relay in DT: decoding is direct-only *)
      relay_bcast_ok := false;
      schedule_finalize ()
    | Bidir.Protocol.Naive ->
      (* uplink hops are addressed to the relay, so the opposite
         terminal drops them — the strawman ignores side information *)
      let pkt_ar = Packet.fresh ~src:Packet.A ~dst:Packet.R ~seq:index wa in
      let pkt_br = Packet.fresh ~src:Packet.B ~dst:Packet.R ~seq:index wb in
      (* hops are chained through the planner callbacks: scheduling a
         later hop eagerly would let its start event beat the previous
         hop's end event at a shared timestamp *)
      Radio.phase radio ~start:(start 0) ~duration:(dur 0)
        ~transmissions:[ tx Packet.A pkt_ar (phase_rate bits_a 0) ];
      naive_forward ~phase_index:1 ~src:Packet.A ~dst:Packet.B ~rate:ra_eff
        ~forwarded:naive_fwd_a ~after:(fun () ->
          Radio.phase radio ~start:(start 2) ~duration:(dur 2)
            ~transmissions:[ tx Packet.B pkt_br (phase_rate bits_b 2) ];
          naive_forward ~phase_index:3 ~src:Packet.B ~dst:Packet.A
            ~rate:rb_eff ~forwarded:naive_fwd_b ~after:(fun () ->
              Engine.schedule_at engine ~time:(t0 +. nf) naive_finalize))
    | Bidir.Protocol.Mabc ->
      Radio.phase radio ~start:(start 0) ~duration:(dur 0)
        ~transmissions:
          [ tx Packet.A pkt_a (phase_rate bits_a 0);
            tx Packet.B pkt_b (phase_rate bits_b 0);
          ];
      schedule_relay_phase ~phase_index:1 ~after:schedule_finalize
    | Bidir.Protocol.Tdbc ->
      Radio.phase radio ~start:(start 0) ~duration:(dur 0)
        ~transmissions:[ tx Packet.A pkt_a (phase_rate bits_a 0) ];
      Radio.phase radio ~start:(start 1) ~duration:(dur 1)
        ~transmissions:[ tx Packet.B pkt_b (phase_rate bits_b 1) ];
      schedule_relay_phase ~phase_index:2 ~after:schedule_finalize
    | Bidir.Protocol.Hbc ->
      Radio.phase radio ~start:(start 0) ~duration:(dur 0)
        ~transmissions:[ tx Packet.A pkt_a (phase_rate bits_a 0) ];
      Radio.phase radio ~start:(start 1) ~duration:(dur 1)
        ~transmissions:[ tx Packet.B pkt_b (phase_rate bits_b 1) ];
      Radio.phase radio ~start:(start 2) ~duration:(dur 2)
        ~transmissions:
          [ tx Packet.A pkt_a (phase_rate bits_a 2);
            tx Packet.B pkt_b (phase_rate bits_b 2);
          ];
      schedule_relay_phase ~phase_index:3 ~after:schedule_finalize
  in
  Engine.schedule_at engine ~time:0. (fun () -> run_block 0);
  Engine.run engine;
  { Runner.metrics;
    analytic_mean_sum_rate = !analytic_acc /. float_of_int cfg.Runner.blocks;
    elapsed_symbols = Engine.now engine;
  }
