type lane = Broadcast | Addressed

type t = {
  node_id : Packet.node_id;
  block : float;
  budgets : (Packet.node_id * lane, float ref) Hashtbl.t;
  packets : (Packet.node_id * lane, Packet.t) Hashtbl.t;
  mutable joint : float;
}

let create node_id ~block_symbols =
  if block_symbols <= 0 then invalid_arg "Node.create: empty block";
  { node_id;
    block = float_of_int block_symbols;
    budgets = Hashtbl.create 8;
    packets = Hashtbl.create 8;
    joint = 0.;
  }

let id t = t.node_id

let reset t =
  Hashtbl.reset t.budgets;
  Hashtbl.reset t.packets;
  t.joint <- 0.

let budget_in t src lane =
  match Hashtbl.find_opt t.budgets (src, lane) with Some r -> !r | None -> 0.

let budget t src = budget_in t src Broadcast
let budget_addressed t src = budget_in t src Addressed

let joint_budget t = t.joint

let observe t (r : Radio.reception) =
  if r.Radio.listener <> t.node_id then
    invalid_arg "Node.observe: reception for a different node";
  let fraction = r.Radio.phase_duration /. t.block in
  List.iter
    (fun (h : Radio.heard) ->
      let lane =
        match h.Radio.packet.Packet.dst with
        | None -> Some Broadcast
        | Some d when d = t.node_id -> Some Addressed
        | Some _ -> None (* addressed elsewhere: dropped *)
      in
      match lane with
      | None -> ()
      | Some lane ->
        let key = (h.Radio.from, lane) in
        let cell =
          match Hashtbl.find_opt t.budgets key with
          | Some r -> r
          | None ->
            let r = ref 0. in
            Hashtbl.add t.budgets key r;
            r
        in
        cell := !cell +. (fraction *. Channel.Awgn.c h.Radio.snr);
        if not (Hashtbl.mem t.packets key) then
          Hashtbl.add t.packets key h.Radio.packet)
    r.Radio.heard;
  let terminal_heard =
    List.exists
      (fun (h : Radio.heard) -> h.Radio.from <> Packet.R)
      r.Radio.heard
  in
  if terminal_heard then
    t.joint <- t.joint +. (fraction *. Channel.Awgn.c r.Radio.total_snr)

let packet_from t src = Hashtbl.find_opt t.packets (src, Broadcast)
let packet_addressed_from t src = Hashtbl.find_opt t.packets (src, Addressed)

let can_decode t ~src ~rate = rate <= budget t src +. 1e-9

let relay_can_decode_both t ~ra ~rb =
  can_decode t ~src:Packet.A ~rate:ra
  && can_decode t ~src:Packet.B ~rate:rb
  && ra +. rb <= t.joint +. 1e-9
