type config = {
  protocol : Bidir.Protocol.t;
  power : float;
  gains : Channel.Gains.t;
  load : float;
  block_symbols : int;
  blocks : int;
  seed : int;
}

type result = {
  offered_bits : int;
  carried_bits : int;
  mean_delay_blocks : float;
  p95_delay_blocks : float;
  max_queue_bits : int;
  utilisation : float;
}

let run cfg =
  if cfg.load <= 0. then invalid_arg "Traffic.run: load must be positive";
  if cfg.blocks <= 0 || cfg.block_symbols < 100 then
    invalid_arg "Traffic.run: bad horizon";
  let s = Bidir.Gaussian.scenario_lin ~power:cfg.power ~gains:cfg.gains in
  let opt = Bidir.Optimize.sum_rate cfg.protocol Bidir.Bound.Inner s in
  let n = float_of_int cfg.block_symbols in
  (* per-block service in bits for each direction, at the optimal point *)
  let serve_a = int_of_float (opt.Bidir.Optimize.ra *. n) in
  let serve_b = int_of_float (opt.Bidir.Optimize.rb *. n) in
  (* arrivals come as whole frames, a handful per block, so the arrival
     variance is comparable to the per-block service and the queue shows
     real M/D/1-style behaviour (bit-level Poisson would be far too
     smooth at these batch sizes) *)
  let frame_a = max 1 (serve_a / 4) in
  let frame_b = max 1 (serve_b / 4) in
  let offer_frames_a =
    if serve_a = 0 then 0.
    else cfg.load *. float_of_int serve_a /. float_of_int frame_a
  in
  let offer_frames_b =
    if serve_b = 0 then 0.
    else cfg.load *. float_of_int serve_b /. float_of_int frame_b
  in
  let rng = Prob.Rng.create ~seed:cfg.seed in
  (* amortised-O(1) two-list queues: with the old list-append FIFO an
     overload horizon cost O(blocks^2) in the enqueue path alone *)
  let q_a = Batch_queue.create () in
  let q_b = Batch_queue.create () in
  let delays = ref [] in
  let offered = ref 0 and max_queue = ref 0 in
  (* Poisson batch: number of bits arriving in one block is Poisson with
     the given mean (sampled by summing exponential inter-arrivals) *)
  let poisson mean =
    if mean <= 0. then 0
    else begin
      let l = exp (-.mean) in
      let rec go k p =
        let p = p *. Prob.Rng.float rng in
        if p > l && k < 100_000 then go (k + 1) p else k
      in
      (* for large means, a normal approximation keeps this O(1) *)
      if mean > 50. then
        max 0
          (int_of_float
             (Float.round (Prob.Dist.normal rng ~mean ~std:(sqrt mean))))
      else go 0 1.
    end
  in
  for block = 0 to cfg.blocks - 1 do
    let now = float_of_int block in
    let frames_a = poisson offer_frames_a and frames_b = poisson offer_frames_b in
    offered := !offered + (frames_a * frame_a) + (frames_b * frame_b);
    for _ = 1 to frames_a do
      Batch_queue.enqueue q_a ~arrival:now ~bits:frame_a
    done;
    for _ = 1 to frames_b do
      Batch_queue.enqueue q_b ~arrival:now ~bits:frame_b
    done;
    (* the peak backlog is reached right after the arrivals land, before
       the block serves: sampling after the drain (as this loop used to)
       under-reports the high-water mark by up to a block's service *)
    let backlog = Batch_queue.bits q_a + Batch_queue.bits q_b in
    if backlog > !max_queue then max_queue := backlog;
    (* the block serves at the end of its slot *)
    let done_a = Batch_queue.drain q_a ~budget:serve_a ~now:(now +. 1.) in
    let done_b = Batch_queue.drain q_b ~budget:serve_b ~now:(now +. 1.) in
    List.iter (fun d -> delays := d :: !delays) done_a;
    List.iter (fun d -> delays := d :: !delays) done_b
  done;
  (* carried = offered minus what is still queued *)
  let carried_bits = !offered - Batch_queue.bits q_a - Batch_queue.bits q_b in
  let delays = Array.of_list !delays in
  let mean_delay, p95 =
    if Array.length delays = 0 then (0., 0.)
    else
      ( Numerics.Stats.mean delays,
        Numerics.Stats.quantile delays 0.95 )
  in
  { offered_bits = !offered;
    carried_bits;
    mean_delay_blocks = mean_delay;
    p95_delay_blocks = p95;
    max_queue_bits = !max_queue;
    utilisation =
      float_of_int carried_bits
      /. Float.max 1. (float_of_int ((serve_a + serve_b) * cfg.blocks));
  }

let delay_curve ?(loads = [ 0.3; 0.5; 0.7; 0.8; 0.9; 0.95 ]) ?(blocks = 2_000)
    ?(block_symbols = 1_000) ?(seed = 5) ~power_db ~gains protocol =
  List.map
    (fun load ->
      let r =
        run
          { protocol;
            power = Numerics.Float_utils.db_to_lin power_db;
            gains;
            load;
            block_symbols;
            blocks;
            seed;
          }
      in
      (load, r.mean_delay_blocks))
    loads

let comparison_table ?(offered = [ 1.5; 2.5; 3.5; 4.2 ]) ?(blocks = 2_000)
    ?(block_symbols = 1_000) ~power_db ~gains () =
  let power = Numerics.Float_utils.db_to_lin power_db in
  let rows =
    List.map
      (fun rate ->
        Printf.sprintf "%.1f" rate
        :: List.map
             (fun protocol ->
               let s = Bidir.Gaussian.scenario_lin ~power ~gains in
               let capacity =
                 (Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s)
                   .Bidir.Optimize.sum_rate
               in
               if rate >= 0.98 *. capacity then "overload"
               else begin
                 let r =
                   run
                     { protocol;
                       power;
                       gains;
                       load = rate /. capacity;
                       block_symbols;
                       blocks;
                       seed = 7;
                     }
                 in
                 Printf.sprintf "%.2f" r.mean_delay_blocks
               end)
             Bidir.Protocol.all)
      offered
  in
  { Bidir.Figures.table_id = "delay";
    table_title =
      Printf.sprintf
        "Mean delay (blocks) vs offered sum rate (P=%g dB, static gains)"
        power_db;
    headers = "offered b/use" :: List.map Bidir.Protocol.name Bidir.Protocol.all;
    rows;
  }
