(** The fine-grained, fully event-driven simulator.

    Where {!Runner} evaluates each block's decode outcome in one step,
    this module plays every protocol phase as explicit events on the
    shared {!Radio} medium: terminals transmit their packets during
    their phases, the relay listens, decides at its broadcast phase
    whether it decoded both messages (information-accumulation budgets
    in {!Node}), XORs the payloads and broadcasts, and each terminal
    combines direct-link side information with the broadcast to decode
    at the end of the block. The radio enforces the half-duplex
    constraint structurally — a protocol implementation that scheduled
    a node to transmit twice in a phase, or overlapped phases, would
    crash rather than cheat.

    Both simulators implement the same quasi-static PHY, so their
    per-block outcomes coincide; `test_netsim` cross-validates them
    block by block. The detailed path is what you extend to study
    protocol {e variations} (different relay decisions, extra phases),
    the block path is what you use for speed. *)

val run : Runner.config -> Runner.result
(** Same configuration and result shape as {!Runner.run}. *)
