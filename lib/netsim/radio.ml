type transmission = {
  tx_src : Packet.node_id;
  tx_packet : Packet.t;
  tx_rate : float;
}

type heard = {
  from : Packet.node_id;
  packet : Packet.t;
  rate : float;
  snr : float;
}

type reception = {
  listener : Packet.node_id;
  phase_start : float;
  phase_duration : float;
  heard : heard list;
  total_snr : float;
}

type t = {
  engine : Engine.t;
  power : float;
  mutable gains : Channel.Gains.t;
  mutable handlers : (Packet.node_id * (reception -> unit)) list;
  mutable busy_until : float;
  mutable on_air : Packet.node_id list;  (** transmitters of the live phase *)
}

let create engine ~power ~gains =
  if power < 0. then invalid_arg "Radio.create: negative power";
  { engine; power; gains; handlers = []; busy_until = 0.; on_air = [] }

let set_gains t gains = t.gains <- gains

let set_receiver t node handler =
  t.handlers <- (node, handler) :: List.remove_assoc node t.handlers

let link_gain t i j =
  let g = t.gains in
  match (i, j) with
  | Packet.A, Packet.B | Packet.B, Packet.A -> g.Channel.Gains.g_ab
  | Packet.A, Packet.R | Packet.R, Packet.A -> g.Channel.Gains.g_ar
  | Packet.B, Packet.R | Packet.R, Packet.B -> g.Channel.Gains.g_br
  | Packet.A, Packet.A | Packet.B, Packet.B | Packet.R, Packet.R ->
    invalid_arg "Radio.link_gain: self link"

let all_nodes = [ Packet.A; Packet.B; Packet.R ]

let phase t ~start ~duration ~transmissions =
  if duration < 0. then invalid_arg "Radio.phase: negative duration";
  let sources = List.map (fun tx -> tx.tx_src) transmissions in
  Engine.schedule_at t.engine ~time:start (fun () ->
      (* the previous phase must have ended: the medium carries one
         phase at a time in these protocols *)
      if t.on_air <> [] then
        failwith "Radio: phase scheduled while another is on the air";
      let rec distinct = function
        | [] -> true
        | s :: rest -> (not (List.mem s rest)) && distinct rest
      in
      if not (distinct sources) then
        failwith "Radio: node transmitting twice in one phase (half-duplex)";
      t.on_air <- sources);
  Engine.schedule_at t.engine ~time:(start +. duration) (fun () ->
      t.on_air <- [];
      let listeners =
        List.filter (fun n -> not (List.mem n sources)) all_nodes
      in
      List.iter
        (fun listener ->
          match List.assoc_opt listener t.handlers with
          | None -> ()
          | Some handler ->
            let heard =
              List.map
                (fun tx ->
                  { from = tx.tx_src;
                    packet = tx.tx_packet;
                    rate = tx.tx_rate;
                    snr = t.power *. link_gain t tx.tx_src listener;
                  })
                transmissions
            in
            let total_snr =
              List.fold_left (fun acc h -> acc +. h.snr) 0. heard
            in
            handler
              { listener;
                phase_start = start;
                phase_duration = duration;
                heard;
                total_snr;
              })
        listeners);
  t.busy_until <- Float.max t.busy_until (start +. duration)

let busy_until t = t.busy_until
