(** Queueing on top of the protocol blocks: the systems view of the
    capacity results.

    Messages arrive at each terminal as independent Poisson processes
    (in bits, aggregated into per-block batches), wait in FIFO queues,
    and each protocol block drains up to its per-direction rate. The
    sojourn (queueing + service) time of each delivered bit-batch is
    measured on the virtual clock. As the offered load approaches the
    protocol's sum capacity the delay diverges — so the protocol with
    the larger capacity region carries more load at any given delay,
    which is what the paper's rate regions mean operationally. *)

type config = {
  protocol : Bidir.Protocol.t;
  power : float;                   (** linear transmit power *)
  gains : Channel.Gains.t;         (** static channel (service is then
                                       deterministic per block) *)
  load : float;                    (** offered load as a fraction of the
                                       protocol's optimal sum rate,
                                       split between the directions in
                                       proportion to the optimal
                                       operating point *)
  block_symbols : int;
  blocks : int;
  seed : int;
}

type result = {
  offered_bits : int;              (** total bits that arrived *)
  carried_bits : int;              (** bits delivered within the horizon *)
  mean_delay_blocks : float;       (** mean sojourn time of delivered
                                       arrivals, in block units *)
  p95_delay_blocks : float;
  max_queue_bits : int;            (** high-water mark across queues,
                                       sampled after each block's
                                       arrivals and before its service
                                       (the pre-drain peak) *)
  utilisation : float;             (** carried / (capacity x horizon) *)
}

val run : config -> result
(** Raises [Invalid_argument] for [load <= 0], [load >= 1] is allowed
    (overload: the queue grows without bound and delays reflect the
    horizon). *)

val delay_curve :
  ?loads:float list -> ?blocks:int -> ?block_symbols:int -> ?seed:int ->
  power_db:float -> gains:Channel.Gains.t -> Bidir.Protocol.t ->
  (float * float) list
(** [(load, mean delay in blocks)] samples of the delay-vs-load curve. *)

val comparison_table :
  ?offered:float list -> ?blocks:int -> ?block_symbols:int ->
  power_db:float -> gains:Channel.Gains.t -> unit -> Bidir.Figures.table
(** Mean delay (blocks) of every protocol at the same absolute offered
    sum rates (bits/use); "overload" marks rates at or above a
    protocol's capacity. The higher-capacity protocol carries the same
    traffic at lower delay — the queueing meaning of the paper's rate
    regions. *)
