type t = {
  mutable blocks : int;
  mutable symbols : int;
  mutable delivered_bits : int;
  mutable offered_bits : int;
  mutable deliveries_ok : int;
  mutable deliveries_failed : int;
  mutable bit_errors : int;
  phase_outages : (int, int) Hashtbl.t;
  (* per-block delivered-bit distribution, shared with the telemetry
     layer so netsim quotes percentiles the same way everything else
     does (unregistered: each simulation owns its own histogram) *)
  block_bits : Telemetry.Histogram.t;
}

let create () =
  { blocks = 0;
    symbols = 0;
    delivered_bits = 0;
    offered_bits = 0;
    deliveries_ok = 0;
    deliveries_failed = 0;
    bit_errors = 0;
    phase_outages = Hashtbl.create 8;
    block_bits = Telemetry.Histogram.create ~lo:1. ~growth:2. ~buckets:32 ();
  }

let record_block t ~symbols ~bits_a ~bits_b ~delivered_a ~delivered_b =
  t.blocks <- t.blocks + 1;
  t.symbols <- t.symbols + symbols;
  t.offered_bits <- t.offered_bits + bits_a + bits_b;
  let delivered = ref 0 in
  let account bits ok =
    if ok then begin
      t.delivered_bits <- t.delivered_bits + bits;
      delivered := !delivered + bits;
      t.deliveries_ok <- t.deliveries_ok + 1
    end
    else t.deliveries_failed <- t.deliveries_failed + 1
  in
  account bits_a delivered_a;
  account bits_b delivered_b;
  Telemetry.Histogram.observe t.block_bits (float_of_int !delivered)

let record_phase_outage t ~phase =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.phase_outages phase) in
  Hashtbl.replace t.phase_outages phase (current + 1)

let record_bit_error t = t.bit_errors <- t.bit_errors + 1

let blocks t = t.blocks
let symbols t = t.symbols
let delivered_bits t = t.delivered_bits
let offered_bits t = t.offered_bits

let throughput t =
  if t.symbols = 0 then 0.
  else float_of_int t.delivered_bits /. float_of_int t.symbols

let outage_rate t =
  let total = t.deliveries_ok + t.deliveries_failed in
  if total = 0 then 0. else float_of_int t.deliveries_failed /. float_of_int total

let phase_outages t =
  Hashtbl.fold (fun phase count acc -> (phase, count) :: acc) t.phase_outages []
  |> List.sort compare

let bit_errors t = t.bit_errors
let failed_deliveries t = t.deliveries_failed

let block_bits_histogram t = t.block_bits

let block_bits_percentiles t = Telemetry.Histogram.percentiles t.block_bits

let merge a b =
  let t = create () in
  t.blocks <- a.blocks + b.blocks;
  t.symbols <- a.symbols + b.symbols;
  t.delivered_bits <- a.delivered_bits + b.delivered_bits;
  t.offered_bits <- a.offered_bits + b.offered_bits;
  t.deliveries_ok <- a.deliveries_ok + b.deliveries_ok;
  t.deliveries_failed <- a.deliveries_failed + b.deliveries_failed;
  t.bit_errors <- a.bit_errors + b.bit_errors;
  let add_outages src =
    Hashtbl.iter
      (fun phase count ->
        let current =
          Option.value ~default:0 (Hashtbl.find_opt t.phase_outages phase)
        in
        Hashtbl.replace t.phase_outages phase (current + count))
      src.phase_outages
  in
  add_outages a;
  add_outages b;
  { t with
    block_bits = Telemetry.Histogram.merge a.block_bits b.block_bits;
  }

let pp fmt t =
  Format.fprintf fmt
    "{blocks=%d symbols=%d throughput=%.4f b/use outage=%.2f%% bit_errors=%d}"
    t.blocks t.symbols (throughput t)
    (100. *. outage_rate t)
    t.bit_errors
