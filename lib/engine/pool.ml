let default = Atomic.make 1

let set_default_domains n =
  if n < 1 then invalid_arg "Engine.Pool.set_default_domains: n < 1";
  Atomic.set default n

let default_domains () = Atomic.get default

(* Workers flag themselves so a nested map runs inline rather than
   spawning or queueing work from inside a worker (which could deadlock
   a fully-busy pool). The caller's domain is flagged for the duration
   of its own chunk for the same reason. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* Persistent worker domains: spawning a domain costs ~1 ms, far more
   than a typical sweep chunk, so workers are spawned once on first
   parallel use, kept blocked on a condition variable between maps, and
   joined from an [at_exit] hook. *)
let pool_lock = Mutex.create ()
let work_cond = Condition.create ()
let pending : (unit -> unit) Queue.t = Queue.create ()
let shutting_down = ref false
let workers : unit Domain.t list ref = ref []
let worker_count = ref 0
let exit_hook_registered = ref false

let rec worker_loop () =
  Mutex.lock pool_lock;
  while Queue.is_empty pending && not !shutting_down do
    Condition.wait work_cond pool_lock
  done;
  if Queue.is_empty pending then Mutex.unlock pool_lock (* shutdown *)
  else begin
    let job = Queue.pop pending in
    Mutex.unlock pool_lock;
    job ();
    worker_loop ()
  end

let teardown () =
  Mutex.lock pool_lock;
  shutting_down := true;
  Condition.broadcast work_cond;
  Mutex.unlock pool_lock;
  List.iter Domain.join !workers;
  workers := [];
  worker_count := 0

let ensure_workers n =
  Mutex.lock pool_lock;
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit teardown
  end;
  while !worker_count < n && not !shutting_down do
    incr worker_count;
    workers :=
      Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          worker_loop ())
      :: !workers
  done;
  Mutex.unlock pool_lock

let prewarm ?domains () =
  let d =
    match domains with
    | Some d when d < 1 -> invalid_arg "Engine.Pool.prewarm: domains < 1"
    | Some d -> d
    | None -> default_domains ()
  in
  if d > 1 then ensure_workers (d - 1)

(* Wall time per executed chunk (caller's and workers'); parallel maps
   only, so an empty histogram means every map ran sequentially. *)
let chunk_seconds = Telemetry.Metrics.histogram "engine.pool.chunk_seconds"

(* Utilization accounting, one observation per parallel map: [busy] is
   the summed chunk execution time, [idle] is [d * wall - busy] — the
   domain-seconds lost to fan-out, queue latency and uneven chunks.
   [queue_wait] is per queued chunk (enqueue to start; the caller's
   chunk 0 never queues). [chunk_imbalance] is max/mean chunk time in
   [1, d]: 1.0 = perfectly even split, d = one chunk did everything. *)
let busy_seconds = Telemetry.Metrics.histogram "engine.pool.busy_seconds"
let idle_seconds = Telemetry.Metrics.histogram "engine.pool.idle_seconds"
let queue_wait_seconds = Telemetry.Metrics.histogram "engine.pool.queue_wait_seconds"
let chunk_imbalance =
  Telemetry.Metrics.histogram ~lo:1. ~growth:1.02 ~buckets:256
    "engine.pool.chunk_imbalance"

(* Layers that own a batch of maps (the campaign runner) can claim the
   idle seconds of every parallel map issued in their dynamic extent by
   installing a sink histogram; attribution is domain-local so
   concurrent unrelated maps don't cross-contaminate. *)
let idle_sink : Telemetry.Histogram.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_idle_sink h f =
  let old = Domain.DLS.get idle_sink in
  Domain.DLS.set idle_sink (Some h);
  Fun.protect ~finally:(fun () -> Domain.DLS.set idle_sink old) f

let map_array ?domains f items =
  let n = Array.length items in
  let d =
    match domains with
    | Some d when d < 1 -> invalid_arg "Engine.Pool.map: domains < 1"
    | Some d -> d
    | None -> default_domains ()
  in
  let d = min d n in
  (* The span wraps both branches so a trace contains the same pool.map
     span set whatever the domain count — only the chunk spans below it
     (cat "pool") vary with d. *)
  Telemetry.Span.with_span ~cat:"pool" "pool.map"
    ~args:[ ("items", Telemetry.Json.Int n); ("domains", Telemetry.Json.Int d) ]
  @@ fun () ->
  if d <= 1 || Domain.DLS.get in_worker then Array.map f items
  else begin
    Stats.record_pool_tasks n;
    (* capture the caller's span context so spans opened inside pool
       tasks report this map's enclosing span as their logical parent,
       whichever domain they run on *)
    let span_ctx = Telemetry.Span.context () in
    let t_fan = Unix.gettimeofday () in
    ensure_workers (d - 1);
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make d in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    (* per-chunk wall time; slot k is written only by the domain running
       chunk k, and all writes happen-before the caller's accounting
       (chunk completion is published through [remaining]) *)
    let chunk_durs = Array.make d 0. in
    let t_enq = ref t_fan in
    let run_chunk k =
      let t_start = Unix.gettimeofday () in
      if k > 0 then
        Telemetry.Metrics.observe queue_wait_seconds
          (Float.max 0. (t_start -. !t_enq));
      (try
         (* chunk k owns indices [k*n/d, (k+1)*n/d) *)
         let body () =
           Telemetry.Span.with_span ~cat:"pool" "pool.chunk"
             ~args:[ ("chunk", Telemetry.Json.Int k) ]
             (fun () ->
               for i = k * n / d to ((k + 1) * n / d) - 1 do
                 results.(i) <- Some (f items.(i))
               done)
         in
         Fun.protect
           ~finally:(fun () ->
             let dt = Unix.gettimeofday () -. t_start in
             Telemetry.Metrics.observe chunk_seconds dt;
             chunk_durs.(k) <- dt)
           (fun () ->
             if Telemetry.Span.enabled () then
               Telemetry.Span.with_context span_ctx body
             else body ())
       with e -> ignore (Atomic.compare_and_set first_error None (Some e)));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.broadcast done_cond;
        Mutex.unlock done_lock
      end
    in
    t_enq := Unix.gettimeofday ();
    Mutex.lock pool_lock;
    for k = 1 to d - 1 do
      Queue.add (fun () -> run_chunk k) pending
    done;
    Condition.broadcast work_cond;
    Mutex.unlock pool_lock;
    (* The caller runs its own chunk, then helps drain the queue rather
       than sleeping — so a map never waits on the scheduler when its
       chunks haven't been picked up yet (crucial on few-core hosts). *)
    (* The flag must come back down even if the drain dies (a poisoned
       mutex, an exception from a condition wait): leaving it set would
       silently force every later map on this domain to run
       sequentially. [run_chunk] itself never raises — user exceptions
       are parked in [first_error] — so the protect only matters for
       the drain's own synchronization failures. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () ->
        run_chunk 0;
        let rec drain () =
          if Atomic.get remaining > 0 then begin
            Mutex.lock pool_lock;
            let job =
              if Queue.is_empty pending then None else Some (Queue.pop pending)
            in
            Mutex.unlock pool_lock;
            match job with
            | Some j ->
              j ();
              drain ()
            | None ->
              (* remaining chunks are in flight on workers *)
              Mutex.lock done_lock;
              while Atomic.get remaining > 0 do
                Condition.wait done_cond done_lock
              done;
              Mutex.unlock done_lock
          end
        in
        drain ());
    let wall = Unix.gettimeofday () -. t_fan in
    let busy = Array.fold_left ( +. ) 0. chunk_durs in
    let idle = Float.max 0. ((float_of_int d *. wall) -. busy) in
    Telemetry.Metrics.observe busy_seconds busy;
    Telemetry.Metrics.observe idle_seconds idle;
    if busy > 0. then begin
      let mx = Array.fold_left Float.max 0. chunk_durs in
      Telemetry.Metrics.observe chunk_imbalance (mx *. float_of_int d /. busy)
    end;
    (match Domain.DLS.get idle_sink with
     | Some h -> Telemetry.Histogram.observe h idle
     | None -> ());
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?domains f items =
  Array.to_list (map_array ?domains f (Array.of_list items))
