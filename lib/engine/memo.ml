type ('k, 'v) t = {
  lock : Mutex.t;
  tbl : ('k, 'v) Hashtbl.t;
  (* per-table hit/miss counters in the telemetry registry, present
     when the table was created with ~name *)
  hits : Telemetry.Metrics.counter option;
  misses : Telemetry.Metrics.counter option;
}

let global_enabled = Atomic.make true

let enabled () = Atomic.get global_enabled
let set_enabled b = Atomic.set global_enabled b

let with_enabled b f =
  let prev = enabled () in
  set_enabled b;
  Fun.protect ~finally:(fun () -> set_enabled prev) f

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.lock

(* Every table registers a clear thunk so [clear_all] can reach caches
   of any key/value type. Tables are module-level globals in practice,
   so the registry stays small and is never pruned. *)
let registry : (unit -> unit) list ref = ref []
let registry_lock = Mutex.create ()

(* Subscribers notified after every [clear_all]: caches that live
   outside the table registry (per-domain warm-start solver slots, for
   instance) observe the notification and invalidate themselves, so
   "cold cache" stays cold for every layer. *)
let clear_hooks : (unit -> unit) list ref = ref []

let on_clear_all f =
  Mutex.lock registry_lock;
  clear_hooks := f :: !clear_hooks;
  Mutex.unlock registry_lock

let create ?name ?(size = 256) () =
  let metric kind =
    Option.map
      (fun n -> Telemetry.Metrics.counter (Printf.sprintf "memo.%s.%s" n kind))
      name
  in
  let t =
    { lock = Mutex.create ();
      tbl = Hashtbl.create size;
      hits = metric "hits";
      misses = metric "misses";
    }
  in
  Mutex.lock registry_lock;
  registry := (fun () -> clear t) :: !registry;
  Mutex.unlock registry_lock;
  t

let clear_all () =
  Mutex.lock registry_lock;
  let thunks = !registry and hooks = !clear_hooks in
  Mutex.unlock registry_lock;
  List.iter (fun f -> f ()) thunks;
  List.iter (fun f -> f ()) hooks

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let bump = function
  | Some c -> Telemetry.Metrics.incr c
  | None -> ()

(* Split lookup/insert for callers that batch their misses (the serve
   layer partitions a request batch into cache hits and a single pool
   fan-out over the misses). Both respect the global switch so a
   disabled cache stays fully cold. *)
let find_opt t k =
  if not (enabled ()) then None
  else begin
    Mutex.lock t.lock;
    let r = Hashtbl.find_opt t.tbl k in
    Mutex.unlock t.lock;
    (match r with
    | Some _ ->
      Stats.record_hit ();
      bump t.hits
    | None ->
      Stats.record_miss ();
      bump t.misses);
    r
  end

let put t k v =
  if enabled () then begin
    Mutex.lock t.lock;
    (* first writer wins, matching [find_or_add]'s race policy *)
    if not (Hashtbl.mem t.tbl k) then Hashtbl.add t.tbl k v;
    Mutex.unlock t.lock
  end

let find_or_add t k compute =
  if not (enabled ()) then compute ()
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl k with
    | Some v ->
      Mutex.unlock t.lock;
      Stats.record_hit ();
      bump t.hits;
      v
    | None ->
      Mutex.unlock t.lock;
      Stats.record_miss ();
      bump t.misses;
      let v = compute () in
      Mutex.lock t.lock;
      let stored =
        match Hashtbl.find_opt t.tbl k with
        | Some v' -> v' (* another domain raced us to this key *)
        | None ->
          Hashtbl.add t.tbl k v;
          v
      in
      Mutex.unlock t.lock;
      stored
  end
