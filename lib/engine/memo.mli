(** Thread-safe memoization tables with a global enable switch.

    A table maps canonical keys to computed values; lookups from any
    domain are serialised by a per-table mutex, but computations run
    OUTSIDE the lock so concurrent misses on different keys proceed in
    parallel (two domains racing on the SAME key may both compute; the
    first insertion wins and both observe the stored value — harmless
    as long as the computation is deterministic, which is the contract
    of every caller in this repo).

    Hits and misses are recorded in {!Stats}. When the global switch is
    off ({!set_enabled} [false]), [find_or_add] always computes and
    records nothing, so disabling the cache changes wall time but never
    results. *)

type ('k, 'v) t

val create : ?name:string -> ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial hash-table capacity (default 256). Keys are
    compared with structural equality and hashed with [Hashtbl.hash].
    When [name] is given the table additionally maintains its own
    [memo.<name>.hits] / [memo.<name>.misses] counters in the
    {!Telemetry.Metrics} registry, so per-cache hit rates show up in
    [--metrics] output alongside the global totals in {!Stats}. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k compute] returns the cached value for [k], or runs
    [compute ()], stores the result and returns it. Exceptions from
    [compute] propagate and nothing is stored. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup without computing, counted as a hit or miss. Always [None]
    (and not counted) when the global switch is off. For callers that
    batch their misses into one parallel computation before storing
    the results with {!put}. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Store a computed value. First writer wins (matching
    {!find_or_add}'s race policy); a no-op when the global switch is
    off, so a disabled cache never retains results. *)

val clear : ('k, 'v) t -> unit
val length : ('k, 'v) t -> int

val clear_all : unit -> unit
(** Clear every table ever created (each [create] registers itself),
    then run every {!on_clear_all} hook. This is what "cold cache"
    means in benchmarks: no layer of the evaluation stack keeps a
    memoized result across the call. *)

val on_clear_all : (unit -> unit) -> unit
(** Register a hook to run after every {!clear_all}. For caches that
    cannot live in a table registry (e.g. per-domain solver instances
    keyed through [Domain.DLS]) the hook typically bumps an epoch that
    each domain checks before reusing its cache. Hooks are never
    unregistered; register from module initialisers only. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global switch shared by all tables (default: enabled). *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch temporarily forced to the given state,
    restoring the previous state afterwards (also on exceptions). *)
