(** Deterministic parallel map over OCaml 5 domains.

    Items are partitioned into contiguous index chunks assigned
    statically to domains (no work stealing), and results land in a
    pre-sized array slot per item — so the output order, and for
    deterministic [f] the output VALUES, are bit-identical regardless
    of the domain count. With [domains = 1] (the default) nothing is
    spawned or queued and the map degenerates to a plain sequential
    [map].

    Worker domains are persistent: spawning a domain costs around a
    millisecond — more than a typical sweep chunk — so workers are
    created on first parallel use, parked on a condition variable
    between maps, and joined by an [at_exit] hook. Nested calls (an
    [f] that itself calls {!map}) run sequentially inside the worker
    instead of queueing, which would deadlock a fully-busy pool.

    Telemetry: every map (parallel or not) runs under a [pool.map]
    span; each executed chunk of a parallel map additionally records a
    [pool.chunk] span and its duration in the
    [engine.pool.chunk_seconds] histogram. The caller's span context is
    captured before fan-out and installed in each chunk, so spans
    opened inside tasks keep their logical parent across domains.

    Utilization accounting (parallel maps only, one observation per
    map): [engine.pool.busy_seconds] is the summed chunk execution
    time, [engine.pool.idle_seconds] is [domains * wall - busy] (the
    domain-seconds lost to fan-out, queue latency and uneven chunks),
    [engine.pool.queue_wait_seconds] records enqueue-to-start latency
    per queued chunk, and [engine.pool.chunk_imbalance] the map's
    max/mean chunk-time ratio in [1, domains]. All of it is
    observation-only — results stay byte-identical. *)

val set_default_domains : int -> unit
(** Set the domain count used when [?domains] is omitted. Raises
    [Invalid_argument] when [n < 1]. The initial default is 1, keeping
    every entry point sequential unless explicitly parallelised. *)

val default_domains : unit -> int

val prewarm : ?domains:int -> unit -> unit
(** Spawn the worker domains a map on [domains] (default: the current
    default) would use, without running anything — so the first
    parallel map of a timed phase doesn't pay the ~1 ms/domain spawn
    cost. A no-op for [domains <= 1]. Raises [Invalid_argument] when
    [domains < 1]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] is [List.map f items] evaluated on up to
    [domains] domains. The first exception raised by any chunk is
    re-raised after all domains are joined. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

val with_idle_sink : Telemetry.Histogram.t -> (unit -> 'a) -> 'a
(** [with_idle_sink h f] runs [f]; every parallel map issued on this
    domain within [f]'s dynamic extent additionally observes its idle
    domain-seconds into [h] (on top of [engine.pool.idle_seconds]).
    Domain-local and re-entrant — the previous sink is restored on
    exit, also on exceptions. Lets a batch owner (e.g. the campaign
    runner) claim the pool idle time it caused. *)
