(** Engine instrumentation: global (process-wide) counters for LP
    solves, cache hits/misses and pool tasks, plus accumulated wall
    time per named phase. All counters are atomic and safe to update
    from any domain.

    Since the telemetry subsystem landed this module is a view over
    {!Telemetry.Metrics}: the counters are registered under [engine.*],
    phase timers are histograms under [phase.<label>] (so [--metrics]
    exports them with percentiles), and {!reset} resets the whole
    registry. The snapshot/[to_string] surface and output format are
    unchanged. *)

type histogram_line = {
  h_name : string;
  h_count : int;
  h_p50 : float;
  h_p99 : float;
}
(** Percentile summary of one well-known histogram, shown in the
    [--stats] block so the common distributions are visible without
    [--metrics]. *)

type snapshot = {
  lp_solves : int;       (** simplex invocations actually performed *)
  lp_pivots : int;       (** simplex pivot iterations across all solves *)
  lp_warm_solves : int;
      (** solves the warm-start engine answered from a previous basis *)
  lp_phase1_skipped : int;
      (** warm solves that needed no phase-1 work at all *)
  cache_hits : int;      (** memo lookups answered without solving *)
  cache_misses : int;    (** memo lookups that had to compute *)
  pool_tasks : int;      (** items dispatched through parallel pool maps *)
  gc_minor_words : int;
      (** minor-heap words allocated while resource tracking was on *)
  gc_major_collections : int;
      (** major GC cycles completed while resource tracking was on *)
  lp_alloc_bytes : int;
      (** bytes allocated inside LP entry points (resource tracking on);
          divided by [lp_solves] this is the per-solve footprint *)
  phases : (string * float) list;
      (** accumulated wall-clock seconds per phase label, sorted by label *)
  summaries : histogram_line list;
      (** p50/p99 of [lp.solve_seconds] and [netsim.queue_depth], when
          they have samples *)
}

val record_lp_solve : unit -> unit
val record_hit : unit -> unit
val record_miss : unit -> unit
val record_pool_tasks : int -> unit

val timed : string -> (unit -> 'a) -> 'a
(** [timed label f] runs [f ()] and adds its wall-clock duration to the
    accumulator for [label] (created on first use). Re-entrant; safe
    from any domain. *)

val snapshot : unit -> snapshot
(** Consistent read of all counters. *)

val reset : unit -> unit
(** Zero every counter and phase accumulator (resets the whole
    {!Telemetry.Metrics} registry, which these live in). *)

val hit_rate : snapshot -> float
(** [hits / (hits + misses)], or 0 when no lookups were recorded. *)

val to_string : snapshot -> string
(** Multi-line human-readable rendering (used by [bench] and the CLI
    [--stats] flag). *)
