type snapshot = {
  lp_solves : int;
  cache_hits : int;
  cache_misses : int;
  pool_tasks : int;
  phases : (string * float) list;
}

let lp_solves = Atomic.make 0
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let pool_tasks = Atomic.make 0

let phase_lock = Mutex.create ()
let phase_acc : (string, float ref) Hashtbl.t = Hashtbl.create 16

let record_lp_solve () = Atomic.incr lp_solves
let record_hit () = Atomic.incr cache_hits
let record_miss () = Atomic.incr cache_misses

let record_pool_tasks n =
  ignore (Atomic.fetch_and_add pool_tasks n : int)

let add_phase_time label dt =
  Mutex.lock phase_lock;
  (match Hashtbl.find_opt phase_acc label with
  | Some r -> r := !r +. dt
  | None -> Hashtbl.add phase_acc label (ref dt));
  Mutex.unlock phase_lock

let timed label f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_phase_time label (Unix.gettimeofday () -. t0))
    f

let snapshot () =
  let phases =
    Mutex.lock phase_lock;
    let acc = Hashtbl.fold (fun k r l -> (k, !r) :: l) phase_acc [] in
    Mutex.unlock phase_lock;
    List.sort (fun (a, _) (b, _) -> compare a b) acc
  in
  { lp_solves = Atomic.get lp_solves;
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    pool_tasks = Atomic.get pool_tasks;
    phases;
  }

let reset () =
  Atomic.set lp_solves 0;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Atomic.set pool_tasks 0;
  Mutex.lock phase_lock;
  Hashtbl.reset phase_acc;
  Mutex.unlock phase_lock

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0. else float_of_int s.cache_hits /. float_of_int total

let to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "engine stats: %d LP solves, %d cache hits / %d misses (%.1f%% hit \
     rate), %d pool tasks\n"
    s.lp_solves s.cache_hits s.cache_misses
    (100. *. hit_rate s)
    s.pool_tasks;
  List.iter
    (fun (label, t) ->
      Printf.bprintf b "  phase %-28s %8.1f ms\n" label (1000. *. t))
    s.phases;
  Buffer.contents b
