(* Thin view over the telemetry metrics registry: the engine's historic
   counters are ordinary registered counters, and phase timers are
   registered histograms under "phase.<label>". The snapshot/to_string
   API (and its output format) is unchanged from the pre-telemetry
   implementation, so callers of --stats see the same block. *)

type histogram_line = {
  h_name : string;
  h_count : int;
  h_p50 : float;
  h_p99 : float;
}

type snapshot = {
  lp_solves : int;
  lp_pivots : int;
  lp_warm_solves : int;
  lp_phase1_skipped : int;
  cache_hits : int;
  cache_misses : int;
  pool_tasks : int;
  gc_minor_words : int;
  gc_major_collections : int;
  lp_alloc_bytes : int;
  phases : (string * float) list;
  summaries : histogram_line list;
}

let lp_solves = Telemetry.Metrics.counter "engine.lp_solves"
let cache_hits = Telemetry.Metrics.counter "engine.cache_hits"
let cache_misses = Telemetry.Metrics.counter "engine.cache_misses"
let pool_tasks = Telemetry.Metrics.counter "engine.pool_tasks"

(* Owned and written by the LP layer ([Linprog.Simplex] /
   [Linprog.Solver]); the registry hands back the same handles, so the
   snapshot can surface the pivot budget without a dependency edge. *)
let lp_pivots = Telemetry.Metrics.counter "linprog.pivots"
let lp_warm_solves = Telemetry.Metrics.counter "linprog.warm_solves"
let lp_phase1_skipped = Telemetry.Metrics.counter "linprog.phase1_skipped"

(* Owned by Telemetry.Resource / the LP layer; populated only while
   resource tracking is enabled (--resource, profile, check). *)
let gc_minor_words = Telemetry.Metrics.counter "gc.minor_words"
let gc_major_collections = Telemetry.Metrics.counter "gc.major_collections"
let lp_alloc_bytes = Telemetry.Metrics.counter "linprog.alloc_bytes"

let record_lp_solve () = Telemetry.Metrics.incr lp_solves
let record_hit () = Telemetry.Metrics.incr cache_hits
let record_miss () = Telemetry.Metrics.incr cache_misses
let record_pool_tasks n = Telemetry.Metrics.add pool_tasks n

let phase_prefix = "phase."

let timed label f =
  Telemetry.Metrics.time
    (Telemetry.Metrics.histogram (phase_prefix ^ label))
    f

(* Histograms surfaced in the --stats block without needing --metrics:
   the two every regression hunt starts from. *)
let summary_histograms = [ "lp.solve_seconds"; "netsim.queue_depth" ]

let snapshot () =
  let plen = String.length phase_prefix in
  let phases =
    List.filter_map
      (fun (name, h) ->
        if
          String.length name > plen
          && String.sub name 0 plen = phase_prefix
          && Telemetry.Histogram.count h > 0
        then
          Some
            (String.sub name plen (String.length name - plen),
             Telemetry.Histogram.sum h)
        else None)
      (Telemetry.Metrics.histograms ())
  in
  let summaries =
    List.filter_map
      (fun (name, h) ->
        if List.mem name summary_histograms && Telemetry.Histogram.count h > 0
        then
          let p50, _, p99 = Telemetry.Histogram.percentiles h in
          Some
            { h_name = name;
              h_count = Telemetry.Histogram.count h;
              h_p50 = p50;
              h_p99 = p99;
            }
        else None)
      (Telemetry.Metrics.histograms ())
  in
  { lp_solves = Telemetry.Metrics.value lp_solves;
    lp_pivots = Telemetry.Metrics.value lp_pivots;
    lp_warm_solves = Telemetry.Metrics.value lp_warm_solves;
    lp_phase1_skipped = Telemetry.Metrics.value lp_phase1_skipped;
    cache_hits = Telemetry.Metrics.value cache_hits;
    cache_misses = Telemetry.Metrics.value cache_misses;
    pool_tasks = Telemetry.Metrics.value pool_tasks;
    gc_minor_words = Telemetry.Metrics.value gc_minor_words;
    gc_major_collections = Telemetry.Metrics.value gc_major_collections;
    lp_alloc_bytes = Telemetry.Metrics.value lp_alloc_bytes;
    phases;
    summaries;
  }

let reset () = Telemetry.Metrics.reset ()

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0. else float_of_int s.cache_hits /. float_of_int total

let to_string s =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "engine stats: %d LP solves, %d cache hits / %d misses (%.1f%% hit \
     rate), %d pool tasks\n"
    s.lp_solves s.cache_hits s.cache_misses
    (100. *. hit_rate s)
    s.pool_tasks;
  if s.lp_pivots > 0 then
    Printf.bprintf b
      "  linprog: %d pivots total, %d warm solves, %d phase-1 skips\n"
      s.lp_pivots s.lp_warm_solves s.lp_phase1_skipped;
  if s.gc_minor_words > 0 || s.lp_alloc_bytes > 0 then begin
    Printf.bprintf b
      "  resource: %d minor words, %d major collections"
      s.gc_minor_words s.gc_major_collections;
    if s.lp_alloc_bytes > 0 && s.lp_solves > 0 then
      Printf.bprintf b ", %d LP alloc bytes (%.0f/solve)" s.lp_alloc_bytes
        (float_of_int s.lp_alloc_bytes /. float_of_int s.lp_solves)
    else if s.lp_alloc_bytes > 0 then
      Printf.bprintf b ", %d LP alloc bytes" s.lp_alloc_bytes;
    Buffer.add_char b '\n'
  end;
  List.iter
    (fun (label, t) ->
      Printf.bprintf b "  phase %-28s %8.1f ms\n" label (1000. *. t))
    s.phases;
  List.iter
    (fun l ->
      Printf.bprintf b "  %-34s count=%d p50=%.3g p99=%.3g\n" l.h_name
        l.h_count l.h_p50 l.h_p99)
    s.summaries;
  Buffer.contents b
