(* Running the protocols as a distributed system: the discrete-event
   simulator moves real (CRC-protected) bits through the half-duplex
   network, the relay XORs the two messages, and each terminal recovers
   the opposite one. The measured throughput is compared against the
   analytic optimum from the bounds, first on a static channel and then
   under Rayleigh block fading with a schedule that is fixed in advance
   (and therefore suffers outages).

   Run with: dune exec examples/network_sim.exe *)

let gains = Channel.Gains.paper_fig4
let power_db = 10.

let () =
  Printf.printf
    "Packet-level simulation, static channel (P = %g dB, Fig. 4 gains)\n\n"
    power_db;
  let rows =
    List.map
      (fun protocol ->
        let cfg =
          Netsim.Runner.default_config ~protocol ~power_db ~gains ~blocks:100
            ~block_symbols:10_000 ()
        in
        let r = Netsim.Runner.run cfg in
        let m = r.Netsim.Runner.metrics in
        [ Bidir.Protocol.name protocol;
          Printf.sprintf "%.4f" (Netsim.Metrics.throughput m);
          Printf.sprintf "%.4f" r.Netsim.Runner.analytic_mean_sum_rate;
          Printf.sprintf "%.2f%%" (100. *. Netsim.Metrics.outage_rate m);
          string_of_int (Netsim.Metrics.bit_errors m);
          string_of_int (Netsim.Metrics.delivered_bits m);
        ])
      Bidir.Protocol.all
  in
  print_string
    (Chart.Table.render
       ~headers:
         [ "protocol"; "measured thr"; "analytic opt"; "outage";
           "undetected errs"; "bits delivered" ]
       ~rows);

  Printf.printf
    "\nRayleigh block fading, TDBC: full-CSI adaptive vs fixed schedule\n\n";
  let fading seed = Channel.Fading.create ~rng_seed:seed ~mean:gains () in
  let base =
    Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc ~power_db ~gains
      ~blocks:2_000 ~block_symbols:1_000 ()
  in
  let adaptive =
    Netsim.Runner.run { base with Netsim.Runner.fading = fading 11 }
  in
  (* fixed schedule optimised for the mean gains, then hit by fading *)
  let s = Bidir.Gaussian.scenario ~power_db ~gains in
  let opt = Bidir.Optimize.sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s in
  let fixed_at backoff =
    Netsim.Runner.run
      { base with
        Netsim.Runner.fading = fading 11;
        mode =
          Netsim.Runner.Fixed
            { deltas = opt.Bidir.Optimize.deltas;
              ra = opt.Bidir.Optimize.ra *. (1. -. backoff);
              rb = opt.Bidir.Optimize.rb *. (1. -. backoff);
            };
      }
  in
  let row label r =
    let m = r.Netsim.Runner.metrics in
    [ label;
      Printf.sprintf "%.4f" (Netsim.Metrics.throughput m);
      Printf.sprintf "%.2f%%" (100. *. Netsim.Metrics.outage_rate m);
    ]
  in
  let rows =
    row "adaptive (full CSI)" adaptive
    :: List.map
         (fun backoff ->
           row
             (Printf.sprintf "fixed, %.0f%% rate backoff" (100. *. backoff))
             (fixed_at backoff))
         [ 0.; 0.3; 0.6; 0.8 ]
  in
  print_string
    (Chart.Table.render ~headers:[ "schedule"; "throughput"; "outage" ] ~rows);
  print_string
    "\nThe fixed schedule trades rate for reliability: backing the rate\n\
     off reduces outages but caps throughput, while full-CSI adaptation\n\
     tracks the instantaneous optimum with zero outage.\n"
