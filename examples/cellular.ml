(* Cellular scenario from the paper's introduction: node a is a mobile
   user, node b a base station, and a relay station r assists the
   bidirectional exchange. The downlink demand is heavier than the
   uplink, so instead of the sum rate we trace the full rate region and
   pick the operating point maximising a weighted objective, then check
   how each protocol copes as the mobile walks away from the base
   station (deeper path loss, fixed relay).

   Run with: dune exec examples/cellular.exe *)

let power_db = 8.
let downlink_weight = 3. (* downlink (b -> a) matters 3x more *)

let gains_for_distance dist =
  (* the base station sits at the origin with the relay 0.3 away on the
     mobile's side; the mobile walks outward so the direct link decays
     fastest and the relay links follow the geometry *)
  let exponent = 3.5 in
  let g d = (1. /. d) ** exponent in
  let d_ab = dist in
  let d_ar = abs_float (dist -. 0.3) +. 0.05 (* mobile to relay *) in
  let d_br = 0.3 (* base to relay, fixed *) in
  Channel.Gains.make ~g_ab:(g d_ab) ~g_ar:(g d_ar) ~g_br:(g d_br)

let () =
  Printf.printf
    "Cellular bidirectional relaying (P = %g dB, downlink weighted %gx)\n\n"
    power_db downlink_weight;
  let distances = [ 1.0; 1.3; 1.6; 2.0; 2.5 ] in
  let rows =
    List.map
      (fun dist ->
        let gains = gains_for_distance dist in
        let s = Bidir.Gaussian.scenario ~power_db ~gains in
        (* weighted operating point per protocol: uplink Ra, downlink Rb *)
        let weighted p =
          let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
          Bidir.Rate_region.max_weighted b ~wa:1. ~wb:downlink_weight
        in
        let scored =
          List.map
            (fun p ->
              let r = weighted p in
              ( p,
                r,
                r.Bidir.Rate_region.ra
                +. (downlink_weight *. r.Bidir.Rate_region.rb) ))
            Bidir.Protocol.all
        in
        let best_p, best_r, _ =
          List.fold_left
            (fun ((_, _, bv) as b) ((_, _, v) as c) -> if v > bv then c else b)
            (List.hd scored) (List.tl scored)
        in
        [ Printf.sprintf "%.1f" dist;
          Bidir.Protocol.name best_p;
          Printf.sprintf "%.4f" best_r.Bidir.Rate_region.ra;
          Printf.sprintf "%.4f" best_r.Bidir.Rate_region.rb;
          Printf.sprintf "%.4f"
            (best_r.Bidir.Rate_region.ra +. best_r.Bidir.Rate_region.rb);
        ])
      distances
  in
  print_string
    (Chart.Table.render
       ~headers:
         [ "mobile dist"; "best protocol"; "uplink Ra"; "downlink Rb";
           "sum" ]
       ~rows);
  print_newline ();
  (* how asymmetric can the service be? show the full region at dist 1.6 *)
  let gains = gains_for_distance 1.6 in
  let s = Bidir.Gaussian.scenario ~power_db ~gains in
  let series =
    List.map
      (fun p ->
        let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
        { Chart.Line_chart.label = Bidir.Protocol.name p;
          points =
            List.map
              (fun (v : Numerics.Vec2.t) ->
                (v.Numerics.Vec2.x, v.Numerics.Vec2.y))
              (Bidir.Rate_region.boundary b);
        })
      Bidir.Protocol.all
  in
  let config =
    { Chart.Line_chart.default_config with
      Chart.Line_chart.title =
        "Rate regions with the mobile at distance 1.6 (uplink Ra vs downlink Rb)";
      xlabel = "uplink Ra (bits/use)";
      ylabel = "downlink Rb (bits/use)";
    }
  in
  print_string (Chart.Line_chart.render_xy ~config series)
