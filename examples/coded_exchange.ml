(* Physical-layer network coding, end to end with a real FEC.

   The MABC protocol's phase 1 superposes the two terminals' signals at
   the relay. Over the binary noisy-XOR multiple-access channel
     Yr = Xa xor Xb xor Bern(p)
   and a LINEAR code, the superposition of two codewords is itself the
   codeword of the XOR of the two messages:
     enc(wa) xor enc(wb) = enc(wa xor wb).
   The relay can therefore run one Viterbi decode on the superposed
   noisy word and directly obtain w_r = wa xor wb — exactly the quantity
   the paper's relay needs to broadcast, without decoding wa and wb
   separately. This example runs the whole exchange with the K=7
   convolutional code and counts frame successes against the analytic
   threshold (rate <= 1 - H2(p) per phase).

   Run with: dune exec examples/coded_exchange.exe *)

let frames = 200
let message_bits = 256

let () =
  let code = Coding.Convolutional.k7_rate_half () in
  let rate = Coding.Convolutional.rate code ~message_bits in
  Printf.printf
    "Coded MABC exchange: K=7 rate-1/2 convolutional code, %d-bit messages\n"
    message_bits;
  Printf.printf
    "phase rate %.3f bits/use; analytic decode threshold 1 - H2(p) > %.3f\n\n"
    rate rate;
  let run_at p_noise =
    let rng = Prob.Rng.create ~seed:(1000 + int_of_float (p_noise *. 1e4)) in
    let flip word p =
      let noisy = Coding.Bitvec.copy word in
      for i = 0 to Coding.Bitvec.length noisy - 1 do
        if Prob.Rng.bernoulli rng ~p then
          Coding.Bitvec.set noisy i (not (Coding.Bitvec.get noisy i))
      done;
      noisy
    in
    let ok = ref 0 in
    for _ = 1 to frames do
      let wa = Coding.Bitvec.random rng message_bits in
      let wb = Coding.Bitvec.random rng message_bits in
      (* phase 1: superposition at the relay through the noisy-XOR MAC *)
      let superposed =
        flip
          (Coding.Bitvec.xor
             (Coding.Convolutional.encode code wa)
             (Coding.Convolutional.encode code wb))
          p_noise
      in
      let wr = Coding.Convolutional.decode code superposed in
      (* phase 2: relay re-encodes the XOR and broadcasts; each terminal
         sees its own BSC *)
      let bcast = Coding.Convolutional.encode code wr in
      let at_b = Coding.Convolutional.decode code (flip bcast p_noise) in
      let at_a = Coding.Convolutional.decode code (flip bcast p_noise) in
      let wa_hat = Coding.Bitvec.xor at_b wb in
      let wb_hat = Coding.Bitvec.xor at_a wa in
      if Coding.Bitvec.equal wa_hat wa && Coding.Bitvec.equal wb_hat wb then
        incr ok
    done;
    float_of_int !ok /. float_of_int frames
  in
  let rows =
    List.map
      (fun p ->
        let margin = 1. -. Infotheory.Info.binary_entropy p -. rate in
        [ Printf.sprintf "%.3f" p;
          Printf.sprintf "%.3f" (1. -. Infotheory.Info.binary_entropy p);
          Printf.sprintf "%+.3f" margin;
          Printf.sprintf "%.1f%%" (100. *. run_at p);
        ])
      [ 0.001; 0.01; 0.02; 0.04; 0.07; 0.11; 0.15 ]
  in
  print_string
    (Chart.Table.render
       ~headers:
         [ "channel p"; "capacity 1-H2(p)"; "margin vs rate"; "frame success" ]
       ~rows);
  print_string
    "\nWith margin the K=7 code delivers essentially every frame; as the\n\
     channel approaches the analytic threshold the success rate collapses\n\
     — the finite-constraint-length gap to capacity, exactly where the\n\
     paper's asymptotic bounds say the cliff must be.\n"
