(* Relay placement study: where should an operator drop a relay between
   two terminals, and which protocol should it run there?

   Sweeps the relay along the a-b line under a path-loss model and
   reports, for each position, the best protocol and the gain over
   direct transmission. This is the engineering question behind the
   paper's Fig. 3.

   Run with: dune exec examples/relay_placement.exe *)

let power_db = 15.
let exponent = 3.

let () =
  let pl = Channel.Pathloss.make ~exponent () in
  Printf.printf
    "Relay placement sweep (P = %g dB, path-loss exponent %g, Gab = 0 dB)\n\n"
    power_db exponent;
  let positions = Numerics.Float_utils.linspace 0.1 0.9 9 in
  let rows =
    Array.to_list
      (Array.map
         (fun d ->
           let gains = Channel.Pathloss.gains_on_line pl ~relay_position:d in
           let s = Bidir.Gaussian.scenario ~power_db ~gains in
           let best = Bidir.Optimize.best_protocol Bidir.Bound.Inner s in
           let dt = Bidir.Optimize.sum_rate Bidir.Protocol.Dt Bidir.Bound.Inner s in
           let gain_pct =
             100.
             *. (best.Bidir.Optimize.sum_rate -. dt.Bidir.Optimize.sum_rate)
             /. dt.Bidir.Optimize.sum_rate
           in
           [ Printf.sprintf "%.2f" d;
             Bidir.Protocol.name best.Bidir.Optimize.protocol;
             Printf.sprintf "%.4f" best.Bidir.Optimize.sum_rate;
             Printf.sprintf "%.4f" dt.Bidir.Optimize.sum_rate;
             Printf.sprintf "+%.1f%%" gain_pct;
           ])
         positions)
  in
  print_string
    (Chart.Table.render
       ~headers:
         [ "relay pos"; "best protocol"; "best sum rate"; "DT sum rate";
           "relay gain" ]
       ~rows);
  print_newline ();
  (* the full Fig. 3 sweep as a chart *)
  print_string
    (Report.render_figure (Bidir.Figures.fig3 ~power_db ~exponent ()))
