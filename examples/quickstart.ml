(* Quickstart: compute and compare the bidirectional protocols on one
   channel — the five-minute tour of the public API.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the channel: gains in dB (the paper's Fig. 4 setting)
        and a transmit power. *)
  let gains = Channel.Gains.of_db ~g_ab:0. ~g_ar:5. ~g_br:7. in
  let scenario = Bidir.Gaussian.scenario ~power_db:10. ~gains in

  (* 2. Optimal sum rates with LP-optimised phase durations. *)
  Printf.printf "Optimal sum rates at P = 10 dB, %s:\n"
    (Format.asprintf "%a" Channel.Gains.pp gains);
  List.iter
    (fun protocol ->
      let r = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner scenario in
      Printf.printf "  %-4s  %.4f bits/use  (Ra=%.4f Rb=%.4f, durations: %s)\n"
        (Bidir.Protocol.name protocol)
        r.Bidir.Optimize.sum_rate r.Bidir.Optimize.ra r.Bidir.Optimize.rb
        (String.concat ", "
           (Array.to_list
              (Array.map (Printf.sprintf "%.3f") r.Bidir.Optimize.deltas))))
    Bidir.Protocol.all;

  (* 3. Is a specific rate pair achievable under TDBC? *)
  let tdbc = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner scenario in
  List.iter
    (fun (ra, rb) ->
      Printf.printf "  TDBC achieves (Ra=%.1f, Rb=%.1f)? %b\n" ra rb
        (Bidir.Rate_region.achievable tdbc ~ra ~rb))
    [ (1.0, 1.0); (2.5, 2.5) ];

  (* 4. Which protocol should this network use? *)
  let best = Bidir.Optimize.best_protocol Bidir.Bound.Inner scenario in
  Printf.printf "\nBest protocol at 10 dB: %s (%.4f bits/use)\n"
    (Bidir.Protocol.name best.Bidir.Optimize.protocol)
    best.Bidir.Optimize.sum_rate;

  (* 5. A rate-region picture, straight to the terminal. *)
  print_newline ();
  print_string (Report.render_figure (Bidir.Figures.fig4 ~power_db:10. ()))
