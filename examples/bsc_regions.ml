(* Discrete (DMC) evaluation: Theorems 2-6 are stated for arbitrary
   discrete memoryless channels; the paper only evaluates the Gaussian
   corollary. This example exercises the general machinery on an
   all-binary network: BSC links plus a noisy-XOR multiple access
   channel at the relay, with input distributions optimised by grid
   search.

   Run with: dune exec examples/bsc_regions.exe *)

let () =
  print_endline "All-BSC bidirectional relay network";
  print_endline "links: a-b BSC(0.15), a-r BSC(0.05), b-r BSC(0.02)";
  print_endline "relay MAC: Yr = Xa xor Xb xor Bern(0.05)\n";
  let net =
    Bidir.Discrete.bsc_network ~p_ab:0.15 ~p_ar:0.05 ~p_br:0.02 ~p_mac:0.05
  in
  let uniform = Bidir.Discrete.uniform_inputs net in

  (* sum rates, uniform vs optimised inputs *)
  let rows =
    List.map
      (fun protocol ->
        let at ins =
          let b = Bidir.Discrete.bounds protocol Bidir.Bound.Inner net ins in
          Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate b)
        in
        let optimised, _ =
          Bidir.Discrete.max_sum_rate_binary ~grid:9 protocol Bidir.Bound.Inner
            net
        in
        [ Bidir.Protocol.name protocol;
          Printf.sprintf "%.4f" (at uniform);
          Printf.sprintf "%.4f" optimised;
        ])
      Bidir.Protocol.relayed
  in
  print_string
    (Chart.Table.render
       ~headers:[ "protocol"; "uniform inputs"; "optimised inputs" ]
       ~rows);

  (* region comparison chart, uniform inputs *)
  print_newline ();
  let series =
    List.map
      (fun protocol ->
        let b = Bidir.Discrete.bounds protocol Bidir.Bound.Inner net uniform in
        { Chart.Line_chart.label = Bidir.Protocol.name protocol;
          points =
            List.map
              (fun (v : Numerics.Vec2.t) ->
                (v.Numerics.Vec2.x, v.Numerics.Vec2.y))
              (Bidir.Rate_region.boundary b);
        })
      Bidir.Protocol.relayed
  in
  let config =
    { Chart.Line_chart.default_config with
      Chart.Line_chart.title = "BSC-network rate regions (uniform inputs)";
      xlabel = "Ra (bits/use)";
      ylabel = "Rb (bits/use)";
    }
  in
  print_string (Chart.Line_chart.render_xy ~config series);

  (* how the XOR MAC's noise throttles MABC but not TDBC *)
  print_newline ();
  print_endline "Sweep of the relay-MAC noise (links fixed):";
  let rows =
    List.map
      (fun p_mac ->
        let net =
          Bidir.Discrete.bsc_network ~p_ab:0.15 ~p_ar:0.05 ~p_br:0.02 ~p_mac
        in
        let ins = Bidir.Discrete.uniform_inputs net in
        let sum protocol =
          let b = Bidir.Discrete.bounds protocol Bidir.Bound.Inner net ins in
          Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate b)
        in
        [ Printf.sprintf "%.2f" p_mac;
          Printf.sprintf "%.4f" (sum Bidir.Protocol.Mabc);
          Printf.sprintf "%.4f" (sum Bidir.Protocol.Tdbc);
          Printf.sprintf "%.4f" (sum Bidir.Protocol.Hbc);
        ])
      [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
  in
  print_string
    (Chart.Table.render ~headers:[ "MAC noise"; "MABC"; "TDBC"; "HBC" ] ~rows)
