(* Link adaptation under quasi-static Rayleigh fading: what should a
   system without transmitter CSI do?

   Three strategies for the TDBC protocol at P = 10 dB:
     1. full-CSI adaptation        (the ergodic benchmark)
     2. fixed rate + block ARQ     (retransmit failed blocks)
     3. epsilon-outage provisioning (pick the rate whose outage is eps)

   Run with: dune exec examples/link_adaptation.exe *)

let gains = Channel.Gains.paper_fig4
let power_db = 10.
let power = Numerics.Float_utils.db_to_lin power_db
let protocol = Bidir.Protocol.Tdbc

let fresh_fading seed = Channel.Fading.create ~rng_seed:seed ~mean:gains ()

let () =
  Printf.printf
    "Link adaptation study: %s at P = %g dB, Rayleigh fading (mean %s)\n\n"
    (Bidir.Protocol.name protocol)
    power_db
    (Format.asprintf "%a" Channel.Gains.pp gains);

  (* 1. the full-CSI benchmark *)
  let ergodic =
    Bidir.Ergodic.ergodic_sum_rate ~blocks:3000 (fresh_fading 1) ~power
      protocol
  in
  let lo, hi = ergodic.Bidir.Ergodic.ci95 in
  Printf.printf "full-CSI ergodic sum rate: %.4f bits/use (95%% CI [%.4f, %.4f])\n\n"
    ergodic.Bidir.Ergodic.mean lo hi;

  (* 2. fixed schedule + ARQ at several rate backoffs *)
  let s = Bidir.Gaussian.scenario ~power_db ~gains in
  let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
  let arq_at backoff =
    Netsim.Arq.run
      { Netsim.Arq.protocol;
        power;
        fading = fresh_fading 2;
        deltas = opt.Bidir.Optimize.deltas;
        ra = opt.Bidir.Optimize.ra *. (1. -. backoff);
        rb = opt.Bidir.Optimize.rb *. (1. -. backoff);
        block_symbols = 2_000;
        messages = 400;
        max_retries = 8;
        seed = 3;
      }
  in
  let rows =
    List.map
      (fun backoff ->
        let r = arq_at backoff in
        [ Printf.sprintf "%.0f%%" (100. *. backoff);
          Printf.sprintf "%.4f" r.Netsim.Arq.goodput;
          Printf.sprintf "%.2f" r.Netsim.Arq.mean_attempts;
          Printf.sprintf "%d" r.Netsim.Arq.dropped_pairs;
        ])
      [ 0.1; 0.3; 0.5; 0.7 ]
  in
  print_endline "fixed schedule (mean-gain optimum) + stop-and-wait ARQ:";
  print_string
    (Chart.Table.render
       ~headers:[ "rate backoff"; "goodput"; "attempts/pair"; "dropped" ]
       ~rows);
  print_newline ();

  (* 3. epsilon-outage provisioning *)
  let rows =
    List.map
      (fun epsilon ->
        let r =
          Bidir.Ergodic.epsilon_outage_sum_rate ~blocks:800 (fresh_fading 4)
            ~power protocol ~epsilon
        in
        [ Printf.sprintf "%.0f%%" (100. *. epsilon);
          Printf.sprintf "%.4f" r;
          Printf.sprintf "%.4f" (r *. (1. -. epsilon));
        ])
      [ 0.01; 0.05; 0.1; 0.25 ]
  in
  print_endline "epsilon-outage provisioning (symmetric service):";
  print_string
    (Chart.Table.render
       ~headers:[ "target outage"; "provisioned sum rate"; "expected goodput" ]
       ~rows);
  print_string
    "\nFull-CSI adaptation is the upper envelope; ARQ approaches it as the\n\
     backoff grows (fewer retries) until the rate penalty dominates, and\n\
     outage provisioning trades a deterministic rate for a known loss.\n"
